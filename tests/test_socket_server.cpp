// The socket serving tier (service/socket_server.hpp + net/client.hpp).
//
// Contracts under test, mirroring the ISSUE's acceptance criteria:
//   - rows returned over the socket are byte-identical to a direct
//     BatchServer run of the same job file, at 1/4/8 server threads and
//     under >= 4 concurrent clients sharing one server and one cache;
//   - a malformed or malicious client (garbage magic, oversized declared
//     length, mid-frame hangup, slow-loris partial header) is rejected
//     with a classified error and never crashes or wedges the accept
//     loop — remaining clients keep being served;
//   - lifecycle: HELLO exchange, PING/STATS, SHUTDOWN-over-the-wire,
//     max_requests, request_stop from another thread, TCP on an
//     ephemeral localhost port.
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <optional>
#include <sstream>
#include <thread>
#include <vector>

#include "net/client.hpp"
#include "net/frame.hpp"
#include "net/protocol.hpp"
#include "net/socket.hpp"
#include "service/batch_server.hpp"
#include "service/job_spec.hpp"
#include "service/report_sink.hpp"
#include "service/socket_server.hpp"
#include "support/changelog.hpp"
#include "support/fdio.hpp"
#include "support/trace.hpp"
#include "test_helpers.hpp"

namespace distapx {
namespace {

using test::ScopedTempDir;

const char* kJobs =
    "gen=path:30      algo=luby     seeds=1:3 name=path-luby\n"
    "gen=grid:5:5     algo=mcm-2eps seeds=1:2 eps=0.3 name=grid-mcm\n"
    "gen=tree:24      algo=mwm-lr   seeds=2:2 maxw=16 name=tree-mwm\n";

/// What `distapx_cli batch` would emit for the same specs (the reference
/// bytes for every transport), served at an unrelated thread count.
net::ResultPayload direct_reference(const std::string& jobs,
                                    unsigned threads = 3) {
  std::istringstream is(jobs);
  service::BatchServer server({threads});
  server.submit_all(service::parse_job_file(is));
  const service::BatchResult result = server.serve();
  const service::RenderedResult rendered =
      service::render_result("direct", result);
  net::ResultPayload payload;
  payload.summary_csv = rendered.summary_csv;
  payload.runs_csv = rendered.runs_csv;
  payload.report_txt = rendered.report_txt;
  return payload;
}

/// A SocketServer on a fresh Unix socket, run()ning on its own thread.
class ServerFixture {
 public:
  explicit ServerFixture(
      const std::function<void(service::SocketServerOptions&)>& tweak = {})
      : dir_("distapx-socket") {
    std::filesystem::create_directories(dir_.path);
    service::SocketServerOptions opts;
    opts.endpoint = net::parse_endpoint((dir_.path / "dx.sock").string());
    opts.threads = 2;
    opts.idle_timeout_ms = 10'000;  // tests override for the loris cases
    if (tweak) tweak(opts);
    server_.emplace(std::move(opts));
    thread_ = std::thread([this] { final_stats_ = server_->run(); });
  }

  ~ServerFixture() {
    if (thread_.joinable()) {
      server_->request_stop();
      thread_.join();
    }
  }

  [[nodiscard]] const net::Endpoint& endpoint() const {
    return server_->endpoint();
  }
  service::SocketServer& server() { return *server_; }

  /// Stops the server and returns the final counters.
  service::SocketServerStats finish() {
    server_->request_stop();
    thread_.join();
    return final_stats_;
  }

  /// True once run() returned on its own (drain via shutdown/max_requests).
  bool wait_done(int timeout_ms = 5000) {
    for (int waited = 0; waited < timeout_ms; waited += 10) {
      if (done()) {
        thread_.join();
        return true;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return false;
  }

 private:
  bool done() {
    // The listener socket disappears when run() drains (Unix listeners
    // unlink their path); probing the fs races less than joining with a
    // timeout, which std::thread does not offer.
    return !std::filesystem::exists(
        std::filesystem::path(server_->endpoint().path));
  }

  ScopedTempDir dir_;
  std::optional<service::SocketServer> server_;
  std::thread thread_;
  service::SocketServerStats final_stats_;
};

/// Reads one frame from a raw socket (for the malformed-client tests,
/// which bypass net::Client on purpose). nullopt on EOF/undecodable.
std::optional<net::Frame> read_raw_frame(int fd) {
  net::FrameReader reader(1 << 20);
  char buf[4096];
  for (;;) {
    net::Frame frame;
    switch (reader.next(frame)) {
      case net::FrameStatus::kFrame:
        return frame;
      case net::FrameStatus::kNeedMore:
        break;
      default:
        return std::nullopt;
    }
    const ssize_t r = fdio::read_some(fd, buf, sizeof buf);
    if (r <= 0) return std::nullopt;
    reader.feed(buf, static_cast<std::size_t>(r));
  }
}

bool write_raw(int fd, const std::string& bytes) {
  return fdio::write_fully(fd, bytes.data(), bytes.size());
}

/// Polls the server's STATS lines until `line` appears (counters update
/// asynchronously with respect to raw-client teardown). The window is
/// generous because some counters only advance once a lane finishes its
/// current job — an eyeblink in Release, whole seconds under TSan.
bool stats_line_appears(const net::Endpoint& ep, const std::string& line,
                        int timeout_ms = 30'000) {
  for (int waited = 0; waited < timeout_ms; waited += 20) {
    net::Client client = net::Client::connect(ep);
    if (client.stats().find(line) != std::string::npos) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return false;
}

TEST(SocketServer, SubmitMatchesDirectBatchByteForByteAtEveryThreadCount) {
  const net::ResultPayload reference = direct_reference(kJobs);
  for (const unsigned threads : {1u, 4u, 8u}) {
    ServerFixture fixture(
        [&](service::SocketServerOptions& o) { o.threads = threads; });
    net::Client client = net::Client::connect(fixture.endpoint());
    const net::SubmitOutcome outcome = client.submit(kJobs);
    ASSERT_TRUE(outcome.ok) << outcome.error;
    EXPECT_EQ(outcome.result.runs_csv, reference.runs_csv)
        << "threads=" << threads;
    EXPECT_EQ(outcome.result.summary_csv, reference.summary_csv)
        << "threads=" << threads;
    // The report is telemetry, not contract — but its shape must hold.
    EXPECT_NE(outcome.result.report_txt.find("runs 7"), std::string::npos)
        << outcome.result.report_txt;
  }
}

TEST(SocketServer, ConcurrentClientsSharingOneCacheGetIdenticalRows) {
  const ScopedTempDir cache_dir("distapx-socket-cache");
  ServerFixture fixture([&](service::SocketServerOptions& o) {
    o.threads = 4;
    o.lanes = 1;  // serial execution: exact hit accounting below needs it
    o.cache_dir = cache_dir.str();
  });
  const net::ResultPayload reference = direct_reference(kJobs);

  constexpr int kClients = 6;
  constexpr int kRepeats = 3;
  std::vector<std::string> failures(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      try {
        net::Client client = net::Client::connect(fixture.endpoint());
        for (int r = 0; r < kRepeats; ++r) {
          const net::SubmitOutcome outcome = client.submit(kJobs);
          if (!outcome.ok) {
            failures[c] = outcome.error;
            return;
          }
          if (outcome.result.runs_csv != reference.runs_csv) {
            failures[c] = "rows diverged on repeat " + std::to_string(r);
            return;
          }
        }
      } catch (const std::exception& e) {
        failures[c] = e.what();
      }
    });
  }
  for (auto& t : clients) t.join();
  for (int c = 0; c < kClients; ++c) {
    EXPECT_TRUE(failures[c].empty()) << "client " << c << ": " << failures[c];
  }

  const auto stats = fixture.finish();
  EXPECT_EQ(stats.results_ok,
            static_cast<std::uint64_t>(kClients * kRepeats));
  EXPECT_EQ(stats.results_error, 0u);
  // 7 runs per submission; only the first submission computes, the rest
  // hit the shared cache (whatever interleaving the clients produced).
  EXPECT_EQ(stats.cache_hits + stats.computed,
            static_cast<std::uint64_t>(kClients * kRepeats * 7));
  EXPECT_GE(stats.cache_hits, static_cast<std::uint64_t>(
                                  (kClients * kRepeats - 1) * 7));
}

TEST(SocketServer, RowsAreByteIdenticalAtEveryLaneCount) {
  const net::ResultPayload reference = direct_reference(kJobs);
  for (const unsigned lanes : {1u, 2u, 5u}) {
    ServerFixture fixture(
        [&](service::SocketServerOptions& o) { o.lanes = lanes; });
    net::Client client = net::Client::connect(fixture.endpoint());
    // Pipelined: all three in flight at once, so with lanes > 1 they
    // really do execute concurrently — and the bytes must not care.
    for (int k = 0; k < 3; ++k) client.send_submit(kJobs);
    for (int k = 0; k < 3; ++k) {
      const net::SubmitOutcome outcome = client.recv_submit();
      ASSERT_TRUE(outcome.ok) << outcome.error;
      EXPECT_EQ(outcome.result.runs_csv, reference.runs_csv)
          << "lanes=" << lanes << " k=" << k;
      EXPECT_EQ(outcome.result.summary_csv, reference.summary_csv)
          << "lanes=" << lanes << " k=" << k;
    }
    const auto stats = fixture.finish();
    EXPECT_EQ(stats.lanes, lanes);
    EXPECT_EQ(stats.results_ok, 3u);
  }
}

TEST(SocketServer, PipelinedSubmitsComeBackInSubmitOrderWithTheRightBytes) {
  // The first job is the slowest by far; on 4 lanes the small ones
  // finish first, so any ordering bug would surface as a swapped
  // response. The per-connection FIFO contract must reorder them back.
  const std::vector<std::string> jobs = {
      "gen=grid:40:40 algo=mcm-2eps seeds=1:4 eps=0.2 name=slow\n",
      "gen=path:11 algo=luby seeds=1:2 name=s1\n",
      "gen=path:12 algo=luby seeds=1:2 name=s2\n",
      "gen=path:13 algo=luby seeds=1:2 name=s3\n",
      "gen=path:14 algo=luby seeds=1:2 name=s4\n",
  };
  std::vector<net::ResultPayload> references;
  references.reserve(jobs.size());
  for (const auto& job : jobs) references.push_back(direct_reference(job));

  ServerFixture fixture([](service::SocketServerOptions& o) {
    o.lanes = 4;
    o.threads = 1;
  });
  net::Client client = net::Client::connect(fixture.endpoint());
  for (const auto& job : jobs) client.send_submit(job);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const net::SubmitOutcome outcome = client.recv_submit();
    ASSERT_TRUE(outcome.ok) << "submit " << i << ": " << outcome.error;
    EXPECT_EQ(outcome.result.runs_csv, references[i].runs_csv)
        << "response " << i << " does not match submit " << i;
    EXPECT_EQ(outcome.result.summary_csv, references[i].summary_csv)
        << "response " << i;
  }
  const auto stats = fixture.finish();
  EXPECT_EQ(stats.results_ok, jobs.size());
  EXPECT_EQ(stats.jobs_dropped, 0u);
}

TEST(SocketServer, SmallJobIsNotHeadOfLineBlockedBehindALongSweep) {
  // The PR-5 single-executor design ran SUBMITs strictly in arrival
  // order, so this exact scenario used to cost the small job the whole
  // sweep's latency. With >= 2 lanes the small job must complete while
  // the sweep is still running.
  const char* kLong = "gen=gnp:3000:0.01 algo=luby seeds=1:15 name=sweep\n";
  const net::ResultPayload small_reference = direct_reference(kJobs);
  ServerFixture fixture([](service::SocketServerOptions& o) {
    o.lanes = 2;
    o.threads = 1;
  });

  double long_ms = 0;
  std::string long_error;
  std::thread sweeper([&] {
    try {
      net::Client client = net::Client::connect(fixture.endpoint());
      const auto t0 = std::chrono::steady_clock::now();
      const net::SubmitOutcome outcome = client.submit(kLong);
      long_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
      if (!outcome.ok) long_error = outcome.error;
    } catch (const std::exception& e) {
      long_error = e.what();
    }
  });
  // Only start the clock on the small job once the sweep is actually
  // occupying a lane.
  ASSERT_TRUE(stats_line_appears(fixture.endpoint(), "executing 1"));

  net::Client client = net::Client::connect(fixture.endpoint());
  const auto t0 = std::chrono::steady_clock::now();
  const net::SubmitOutcome outcome = client.submit(kJobs);
  const double small_ms = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
  sweeper.join();
  ASSERT_TRUE(outcome.ok) << outcome.error;
  ASSERT_TRUE(long_error.empty()) << long_error;
  EXPECT_EQ(outcome.result.runs_csv, small_reference.runs_csv);
  // Generous: the small job is a few ms of work, the sweep hundreds.
  // Even timesharing one core it must come back well before the sweep.
  EXPECT_LT(small_ms, long_ms * 0.5)
      << "small job waited for the sweep (small " << small_ms << "ms, sweep "
      << long_ms << "ms) — head-of-line blocking is back";
}

TEST(SocketServer, MultiLaneClientsShareTheCacheAndConserveRuns) {
  const ScopedTempDir cache_dir("distapx-socket-mlcache");
  ServerFixture fixture([&](service::SocketServerOptions& o) {
    o.lanes = 4;
    o.threads = 2;
    o.cache_dir = cache_dir.str();
  });
  const net::ResultPayload reference = direct_reference(kJobs);

  constexpr int kClients = 4;
  constexpr int kRepeats = 2;
  std::vector<std::string> failures(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      try {
        net::Client client = net::Client::connect(fixture.endpoint());
        for (int r = 0; r < kRepeats; ++r) {
          const net::SubmitOutcome outcome = client.submit(kJobs);
          if (!outcome.ok) {
            failures[c] = outcome.error;
            return;
          }
          if (outcome.result.runs_csv != reference.runs_csv) {
            failures[c] = "rows diverged on repeat " + std::to_string(r);
            return;
          }
        }
      } catch (const std::exception& e) {
        failures[c] = e.what();
      }
    });
  }
  for (auto& t : clients) t.join();
  for (int c = 0; c < kClients; ++c) {
    EXPECT_TRUE(failures[c].empty()) << "client " << c << ": " << failures[c];
  }
  const auto stats = fixture.finish();
  EXPECT_EQ(stats.results_ok,
            static_cast<std::uint64_t>(kClients * kRepeats));
  // Concurrent lanes may each compute a unit the cache does not hold
  // yet (both then fill the same entry — publication is atomic), so
  // exact hit counts depend on interleaving. Conservation does not:
  // every run was either a hit or computed.
  EXPECT_EQ(stats.cache_hits + stats.computed,
            static_cast<std::uint64_t>(kClients * kRepeats * 7));
}

TEST(SocketServer, HangupWithQueuedJobsDropsThemAndOthersKeepBeingServed) {
  // One lane, so the raw client's second SUBMIT is still queued when the
  // connection dies mid-frame: the queued job must be discarded without
  // executing, the running one's response dropped at delivery, and a
  // healthy client served as if nothing happened.
  ServerFixture fixture([](service::SocketServerOptions& o) {
    o.lanes = 1;
    o.threads = 1;
  });
  {
    fdio::Fd raw = net::connect_endpoint(fixture.endpoint());
    std::string burst;
    burst += net::encode_frame(
        net::FrameType::kSubmit,
        "gen=grid:60:60 algo=mcm-2eps seeds=1:4 eps=0.2 name=busy\n");
    burst += net::encode_frame(net::FrameType::kSubmit,
                               "gen=path:20 algo=luby seeds=1:2 name=queued\n");
    // ...and half a header, so the hangup is classified mid-frame.
    burst += net::encode_frame(net::FrameType::kSubmit, "x").substr(0, 6);
    ASSERT_TRUE(write_raw(raw.get(), burst));
  }  // hangup

  // Both of the dead client's jobs end up dropped: the queued one purged
  // unexecuted, the running one at delivery time.
  EXPECT_TRUE(stats_line_appears(fixture.endpoint(), "jobs_dropped 2"));
  net::Client client = net::Client::connect(fixture.endpoint());
  const net::SubmitOutcome outcome = client.submit(kJobs);
  EXPECT_TRUE(outcome.ok) << outcome.error;
  const auto stats = fixture.finish();
  EXPECT_EQ(stats.jobs_dropped, 2u);
  EXPECT_EQ(stats.protocol_errors, 1u);
}

TEST(SocketServer, ConnectRetryWaitsOutAServerThatIsStillStarting) {
  const ScopedTempDir dir("distapx-socket-retry");
  std::filesystem::create_directories(dir.path);
  const net::Endpoint ep =
      net::parse_endpoint((dir.path / "late.sock").string());

  std::string client_error;
  std::atomic<bool> pinged{false};
  std::thread early_client([&] {
    try {
      // Dialing a path that does not exist yet: ENOENT, retried.
      net::Client client = net::Client::connect_retry(ep, 10'000);
      client.ping();
      pinged.store(true);
    } catch (const std::exception& e) {
      client_error = e.what();
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  ServerFixture fixture(
      [&](service::SocketServerOptions& o) { o.endpoint = ep; });
  early_client.join();
  EXPECT_TRUE(client_error.empty()) << client_error;
  EXPECT_TRUE(pinged.load());
}

TEST(SocketServer, ConnectRetryStillFailsWhenNobodyEverListens) {
  const ScopedTempDir dir("distapx-socket-noretry");
  std::filesystem::create_directories(dir.path);
  const net::Endpoint never =
      net::parse_endpoint((dir.path / "never.sock").string());
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_THROW(net::Client::connect_retry(never, 120), net::NetError);
  const double waited_ms = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - t0)
                               .count();
  // It kept trying for about the budget instead of giving up instantly.
  EXPECT_GE(waited_ms, 100.0);
}

TEST(SocketServer, ConnectRetryGivesUpOnARefusedTcpPort) {
  net::Endpoint ep;
  {
    // Grab an ephemeral port, then free it: dialing it refuses (with a
    // tiny chance another process grabs it — then the HELLO fails, which
    // is still a NetError).
    net::Listener probe = net::Listener::open(net::parse_endpoint("127.0.0.1:0"));
    ep = probe.endpoint();
  }
  EXPECT_THROW(net::Client::connect_retry(ep, 100), net::NetError);
}

TEST(SocketServer, MalformedJobFileGetsLineNumberedErrAndSessionSurvives) {
  ServerFixture fixture;
  net::Client client = net::Client::connect(fixture.endpoint());
  const net::SubmitOutcome bad =
      client.submit("gen=path:10 algo=luby\n# fine\ngen=path:10 algo=nope\n");
  ASSERT_FALSE(bad.ok);
  EXPECT_NE(bad.error.find("line 3"), std::string::npos) << bad.error;
  EXPECT_NE(bad.error.find("unknown algorithm"), std::string::npos)
      << bad.error;
  // The connection stays usable: a bad job file is the client's problem,
  // not the session's.
  const net::SubmitOutcome good = client.submit(kJobs);
  EXPECT_TRUE(good.ok) << good.error;

  const net::SubmitOutcome empty = client.submit("# nothing here\n");
  ASSERT_FALSE(empty.ok);
  EXPECT_NE(empty.error.find("no jobs"), std::string::npos) << empty.error;

  const auto stats = fixture.finish();
  EXPECT_EQ(stats.results_ok, 1u);
  EXPECT_EQ(stats.results_error, 2u);
  EXPECT_EQ(stats.protocol_errors, 0u);
}

TEST(SocketServer, GarbageMagicIsClassifiedAndOtherClientsKeepBeingServed) {
  ServerFixture fixture;
  // A well-behaved client connects first and stays connected throughout.
  net::Client survivor = net::Client::connect(fixture.endpoint());

  fdio::Fd raw = net::connect_endpoint(fixture.endpoint());
  ASSERT_TRUE(write_raw(raw.get(), "GET / HTTP/1.1\r\n\r\n"));
  const auto reply = read_raw_frame(raw.get());
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->type, net::FrameType::kError);
  EXPECT_NE(reply->payload.find("bad-magic"), std::string::npos)
      << reply->payload;
  // After the ERR the server hangs up on the unsynchronizable stream.
  char byte;
  EXPECT_EQ(fdio::read_some(raw.get(), &byte, 1), 0);

  const net::SubmitOutcome outcome = survivor.submit(kJobs);
  EXPECT_TRUE(outcome.ok) << outcome.error;
  const auto stats = fixture.finish();
  EXPECT_EQ(stats.protocol_errors, 1u);
  EXPECT_EQ(stats.results_ok, 1u);
}

TEST(SocketServer, OversizedDeclaredLengthIsRejectedFromTheHeader) {
  ServerFixture fixture(
      [](service::SocketServerOptions& o) { o.max_frame_bytes = 1024; });
  fdio::Fd raw = net::connect_endpoint(fixture.endpoint());
  // A valid header announcing 1 GiB; no payload bytes follow.
  std::string header = net::encode_frame(net::FrameType::kSubmit, "");
  header[8] = 0;
  header[9] = 0;
  header[10] = 0;
  header[11] = 0x40;
  ASSERT_TRUE(write_raw(raw.get(), header));
  const auto reply = read_raw_frame(raw.get());
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->type, net::FrameType::kError);
  EXPECT_NE(reply->payload.find("oversized"), std::string::npos)
      << reply->payload;
  EXPECT_EQ(fixture.finish().protocol_errors, 1u);
}

TEST(SocketServer, MidFrameDisconnectIsCountedAndTheServerKeepsServing) {
  ServerFixture fixture;
  {
    fdio::Fd raw = net::connect_endpoint(fixture.endpoint());
    const std::string frame = net::encode_frame(net::FrameType::kSubmit,
                                                std::string(1000, 'j'));
    // Half a frame, then hangup: a truncated SUBMIT must never reach the
    // executor or wedge the loop.
    ASSERT_TRUE(write_raw(raw.get(), frame.substr(0, frame.size() / 2)));
  }
  EXPECT_TRUE(stats_line_appears(fixture.endpoint(), "protocol_errors 1"));
  net::Client client = net::Client::connect(fixture.endpoint());
  EXPECT_TRUE(client.submit(kJobs).ok);
}

TEST(SocketServer, SlowLorisPartialHeaderIsReapedWithAClassifiedTimeout) {
  ServerFixture fixture(
      [](service::SocketServerOptions& o) { o.idle_timeout_ms = 100; });
  fdio::Fd loris = net::connect_endpoint(fixture.endpoint());
  // 6 valid header bytes, then silence: mid-frame, unclassifiable as
  // garbage, exactly the stall the idle clock exists for.
  ASSERT_TRUE(write_raw(
      loris.get(), net::encode_frame(net::FrameType::kSubmit, "").substr(0, 6)));
  const auto t0 = std::chrono::steady_clock::now();
  const auto reply = read_raw_frame(loris.get());
  const double waited =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  ASSERT_TRUE(reply.has_value()) << "reaped without the classified ERR";
  EXPECT_EQ(reply->type, net::FrameType::kError);
  EXPECT_NE(reply->payload.find("timeout"), std::string::npos)
      << reply->payload;
  EXPECT_LT(waited, 5.0);  // reaped by the clock, not by test teardown
  char byte;
  EXPECT_EQ(fdio::read_some(loris.get(), &byte, 1), 0);  // and hung up on

  // The loris never blocked anyone: a healthy client is served fine.
  net::Client client = net::Client::connect(fixture.endpoint());
  EXPECT_TRUE(client.submit(kJobs).ok);
  const auto stats = fixture.finish();
  EXPECT_EQ(stats.timeouts, 1u);
  EXPECT_GE(stats.protocol_errors, 1u);
}

TEST(SocketServer, ClientThatNeverReadsItsResponsesIsReaped) {
  ServerFixture fixture(
      [](service::SocketServerOptions& o) { o.idle_timeout_ms = 150; });
  fdio::Fd raw = net::connect_endpoint(fixture.endpoint());
  // Dozens of well-formed SUBMITs, zero reads: responses pile up past the
  // kernel socket buffer into the server-side outbuf. The reap clock must
  // fire rather than let that buffer (and the connection) grow forever.
  const std::string submit = net::encode_frame(
      net::FrameType::kSubmit, "gen=path:60 algo=luby seeds=1:200\n");
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(write_raw(raw.get(), submit));
  }
  EXPECT_TRUE(stats_line_appears(fixture.endpoint(), "timeouts 1"));
  // The server is not wedged: a healthy client still gets served.
  net::Client client = net::Client::connect(fixture.endpoint());
  EXPECT_TRUE(client.submit(kJobs).ok);
}

TEST(SocketServer, PingStatsAndHello) {
  ServerFixture fixture;
  net::Client client = net::Client::connect(fixture.endpoint());
  EXPECT_NE(client.server_software().find("distapx"), std::string::npos);
  client.ping();
  client.ping();
  const std::string stats = client.stats();
  EXPECT_NE(stats.find("pings 2"), std::string::npos) << stats;
  EXPECT_NE(stats.find("connections_accepted 1"), std::string::npos) << stats;
  EXPECT_NE(stats.find("draining 0"), std::string::npos) << stats;
  EXPECT_NE(stats.find("lanes "), std::string::npos) << stats;
  EXPECT_NE(stats.find("jobs_dropped 0"), std::string::npos) << stats;
}

TEST(SocketServer, ShutdownFrameDrainsTheServer) {
  ServerFixture fixture;
  net::Client client = net::Client::connect(fixture.endpoint());
  const net::SubmitOutcome ack = client.shutdown();
  EXPECT_TRUE(ack.ok) << ack.error;
  EXPECT_TRUE(fixture.wait_done()) << "run() did not return after SHUTDOWN";
}

TEST(SocketServer, ShutdownCanBeDisabled) {
  ServerFixture fixture(
      [](service::SocketServerOptions& o) { o.allow_remote_shutdown = false; });
  net::Client client = net::Client::connect(fixture.endpoint());
  const net::SubmitOutcome ack = client.shutdown();
  ASSERT_FALSE(ack.ok);
  EXPECT_NE(ack.error.find("disabled"), std::string::npos) << ack.error;
  // Still serving (the refusal really was a refusal).
  EXPECT_TRUE(client.submit(kJobs).ok);
}

TEST(SocketServer, MaxRequestsBoundsTheRunAndStillAnswersTheLastSubmit) {
  ServerFixture fixture(
      [](service::SocketServerOptions& o) { o.max_requests = 2; });
  net::Client client = net::Client::connect(fixture.endpoint());
  EXPECT_TRUE(client.submit(kJobs).ok);
  EXPECT_TRUE(client.submit(kJobs).ok);  // the drain-triggering request
  EXPECT_TRUE(fixture.wait_done()) << "run() did not return at max_requests";
}

TEST(SocketServer, TracedSubmitEchoesTheSpanTreeWithIdenticalResultBytes) {
  const net::ResultPayload reference = direct_reference(kJobs);
  ServerFixture fixture;
  net::Client client = net::Client::connect(fixture.endpoint());
  const net::SubmitOutcome traced = client.submit_traced(kJobs);
  ASSERT_TRUE(traced.ok) << traced.error;
  // The determinism contract survives the trace echo: result bytes are
  // exactly the plain-SUBMIT (and direct batch) bytes.
  EXPECT_EQ(traced.result.runs_csv, reference.runs_csv);
  EXPECT_EQ(traced.result.summary_csv, reference.summary_csv);
  ASSERT_FALSE(traced.trace_txt.empty());
  for (const char* name : {"trace 1", "endpoint=submit", "recv",
                           "queue-wait", "lane-execute", "compute"}) {
    EXPECT_NE(traced.trace_txt.find(name), std::string::npos)
        << "missing span " << name << " in:\n"
        << traced.trace_txt;
  }
  // A plain submit on the same connection still answers with a bare
  // RESULT (no trace text), and the same bytes.
  const net::SubmitOutcome plain = client.submit(kJobs);
  ASSERT_TRUE(plain.ok) << plain.error;
  EXPECT_EQ(plain.result.runs_csv, reference.runs_csv);
  EXPECT_TRUE(plain.trace_txt.empty());
}

TEST(SocketServer, CompletedSubmitsArePublishedIntoTheTraceSink) {
  trace::TraceSink sink;
  ServerFixture fixture(
      [&](service::SocketServerOptions& o) { o.trace_sink = &sink; });
  net::Client client = net::Client::connect(fixture.endpoint());
  ASSERT_TRUE(client.submit(kJobs).ok);
  ASSERT_TRUE(client.submit_traced(kJobs).ok);
  // Publication happens when the respond bytes flush; the client holding
  // both responses means the flush already ran, but give the server a
  // beat under sanitizer schedulers.
  for (int waited = 0; sink.published_total() < 2 && waited < 5000;
       waited += 10) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(sink.published_total(), 2u);
  const std::vector<trace::Trace> recent = sink.recent();
  ASSERT_EQ(recent.size(), 2u);
  // Newest first: the traced submit (#2), then the plain one (#1) —
  // both carry the full span set including the closed respond span.
  EXPECT_EQ(recent[0].id, 2u);
  EXPECT_EQ(recent[1].id, 1u);
  for (const trace::Trace& t : recent) {
    EXPECT_EQ(t.endpoint, "submit");
    bool saw_respond_closed = false;
    for (const trace::Span& s : t.spans) {
      if (s.name == "respond" && s.end_ns != 0) saw_respond_closed = true;
    }
    EXPECT_TRUE(saw_respond_closed) << trace::render_trace_tree(t);
  }
}

TEST(SocketServer, TracingDisabledStillAnswersATraceRequest) {
  // The kill switch stops ambient collection; an explicit SUBMITTRACE is
  // a client contract and must keep working.
  trace::set_enabled(false);
  trace::TraceSink sink;
  ServerFixture fixture(
      [&](service::SocketServerOptions& o) { o.trace_sink = &sink; });
  net::Client client = net::Client::connect(fixture.endpoint());
  const net::SubmitOutcome plain = client.submit(kJobs);
  ASSERT_TRUE(plain.ok);
  const net::SubmitOutcome traced = client.submit_traced(kJobs);
  trace::set_enabled(true);
  ASSERT_TRUE(traced.ok) << traced.error;
  EXPECT_FALSE(traced.trace_txt.empty());
  EXPECT_EQ(traced.result.runs_csv, plain.result.runs_csv);
  // Only the explicitly requested trace was built (and published). The
  // publish lands a beat after the client holds the response bytes.
  for (int waited = 0; sink.published_total() < 1 && waited < 5000;
       waited += 10) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(sink.published_total(), 1u);
}

TEST(SocketServer, TcpEphemeralPortOnLocalhostServes) {
  ServerFixture fixture([](service::SocketServerOptions& o) {
    o.endpoint = net::parse_endpoint("127.0.0.1:0");
  });
  ASSERT_EQ(fixture.endpoint().kind, net::Endpoint::Kind::kTcp);
  ASSERT_NE(fixture.endpoint().port, 0)  // resolved at bind time
      << fixture.endpoint().to_string();
  net::Client client = net::Client::connect(fixture.endpoint());
  const net::SubmitOutcome outcome = client.submit(kJobs);
  ASSERT_TRUE(outcome.ok) << outcome.error;
  EXPECT_EQ(outcome.result.runs_csv, direct_reference(kJobs).runs_csv);
}

TEST(SocketServer, RequestStopUnblocksRunFromAnotherThread) {
  ServerFixture fixture;
  const auto stats = fixture.finish();  // request_stop + join
  EXPECT_EQ(stats.submits_accepted, 0u);
  EXPECT_TRUE(fixture.server().stop_requested());
}

TEST(SocketServer, StaleSocketPathIsReclaimedALiveOneIsNot) {
  const ScopedTempDir dir("distapx-socket-stale");
  std::filesystem::create_directories(dir.path);
  const std::string path = (dir.path / "dx.sock").string();
  service::SocketServerOptions opts;
  opts.endpoint = net::parse_endpoint(path);
  {
    // A crashed server leaves a bound-but-dead socket file behind (the
    // RAII unlink never ran). Fabricate one with raw syscalls: bind,
    // close the fd, leave the file.
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    ASSERT_EQ(::bind(fd, reinterpret_cast<const sockaddr*>(&addr),
                     sizeof addr),
              0);
    ::close(fd);
  }
  ASSERT_TRUE(std::filesystem::exists(path));
  {
    // The stale path is probed, found dead, reclaimed — the new server
    // binds and serves.
    ServerFixture over_stale([&](service::SocketServerOptions& o) {
      o.endpoint = net::parse_endpoint(path);
    });
    net::Client client = net::Client::connect(over_stale.endpoint());
    client.ping();
    // The path is occupied by a *live* server now: a second bind must
    // refuse rather than steal it.
    EXPECT_THROW(service::SocketServer{opts}, net::NetError);
  }

  // A plain file squatting on the path is never unlinked.
  {
    std::ofstream squatter(path);
  }
  EXPECT_THROW(service::SocketServer{opts}, net::NetError);
}

// ---- crash recovery via the submit journal ----------------------------------

TEST(SocketServer, JournaledSubmitWithoutCompletionIsRecoveredIntoTheCache) {
  const ScopedTempDir dir("distapx-socket-recover");
  std::filesystem::create_directories(dir.path / "cache");
  const std::string journal = (dir.path / "journal").string();
  // A predecessor accepted submit #1 (the S record landed durably before
  // any lane touched it) and crashed before the R record.
  {
    Changelog j(journal);
    ASSERT_TRUE(j.append("S 1 " + std::string(kJobs)));
  }

  ServerFixture fixture([&](service::SocketServerOptions& o) {
    o.cache_dir = (dir.path / "cache").string();
    o.journal_path = journal;
  });
  // Recovery ran in the constructor, before the listener opened, and the
  // consumed claim was compacted away — history must not replay twice.
  EXPECT_EQ(
      fixture.server().registry().counter("socket_recovered_jobs_total")
          .value(),
      1u);
  ASSERT_NE(fixture.server().journal(), nullptr);
  EXPECT_EQ(fixture.server().journal()->snapshot_records(), 0u);

  // The client's retry lands entirely on the prewarmed cache — identical
  // bytes, zero recomputation.
  const net::ResultPayload reference = direct_reference(kJobs);
  net::Client client = net::Client::connect(fixture.endpoint());
  const net::SubmitOutcome outcome = client.submit(kJobs);
  ASSERT_TRUE(outcome.ok) << outcome.error;
  EXPECT_EQ(outcome.result.runs_csv, reference.runs_csv);
  EXPECT_EQ(outcome.result.summary_csv, reference.summary_csv);

  const auto stats = fixture.finish();
  EXPECT_EQ(stats.computed, 7u);    // the recovery pass, nothing else
  EXPECT_EQ(stats.cache_hits, 7u);  // the retry, entirely warm
}

TEST(SocketServer, CompletedSubmitsAreNeverReExecutedOnRestart) {
  const ScopedTempDir dir("distapx-socket-norerun");
  std::filesystem::create_directories(dir.path / "cache");
  const std::string journal = (dir.path / "journal").string();
  {
    ServerFixture fixture([&](service::SocketServerOptions& o) {
      o.cache_dir = (dir.path / "cache").string();
      o.journal_path = journal;
    });
    net::Client client = net::Client::connect(fixture.endpoint());
    ASSERT_TRUE(client.submit(kJobs).ok);
    fixture.finish();
  }
  // Every accepted S has its R: a restart over the same journal finds no
  // pending claims and recovers nothing.
  ServerFixture restarted([&](service::SocketServerOptions& o) {
    o.cache_dir = (dir.path / "cache").string();
    o.journal_path = journal;
  });
  EXPECT_EQ(
      restarted.server().registry().counter("socket_recovered_jobs_total")
          .value(),
      0u);
  // And the cache the first server filled still serves the same bytes.
  net::Client client = net::Client::connect(restarted.endpoint());
  const net::SubmitOutcome outcome = client.submit(kJobs);
  ASSERT_TRUE(outcome.ok) << outcome.error;
  EXPECT_EQ(outcome.result.runs_csv, direct_reference(kJobs).runs_csv);
  const auto stats = restarted.finish();
  EXPECT_EQ(stats.cache_hits, 7u);
  EXPECT_EQ(stats.computed, 0u);
}

TEST(SocketServer, RecoveryWithoutACacheDropsTheClaimsCleanly) {
  const ScopedTempDir dir("distapx-socket-nocache");
  std::filesystem::create_directories(dir.path);
  const std::string journal = (dir.path / "journal").string();
  {
    Changelog j(journal);
    ASSERT_TRUE(j.append("S 1 " + std::string(kJobs)));
    ASSERT_TRUE(j.append("S 2 not a job file at all"));
  }
  // No cache: there is nowhere useful to put recovered results, so the
  // claims are dropped (clients retry) and the server starts normally.
  ServerFixture fixture([&](service::SocketServerOptions& o) {
    o.journal_path = journal;
  });
  EXPECT_EQ(
      fixture.server().registry().counter("socket_recovered_jobs_total")
          .value(),
      0u);
  EXPECT_EQ(fixture.server().journal()->snapshot_records(), 0u);
  net::Client client = net::Client::connect(fixture.endpoint());
  EXPECT_TRUE(client.submit(kJobs).ok);
}

}  // namespace
}  // namespace distapx
