// Determinism regression tests for the batched multi-seed scheduler: the
// same seed set must produce bit-identical outputs on 1 thread and on N
// threads, and across two invocations.
#include <gtest/gtest.h>

#include <memory>

#include "graph/algos.hpp"
#include "graph/generators.hpp"
#include "maxis/layered_maxis.hpp"
#include "mis/luby.hpp"
#include "mis/mis.hpp"
#include "sim/run_many.hpp"
#include "support/assert.hpp"
#include "test_helpers.hpp"

namespace distapx {
namespace {

std::vector<std::uint64_t> seeds_for(int count) {
  std::vector<std::uint64_t> seeds;
  for (int i = 0; i < count; ++i) {
    seeds.push_back(hash_combine(0xabcdef, static_cast<std::uint64_t>(i)));
  }
  return seeds;
}

void expect_same_results(const std::vector<sim::RunResult>& a,
                         const std::vector<sim::RunResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].outputs, b[i].outputs) << "run " << i;
    EXPECT_EQ(a[i].halted, b[i].halted) << "run " << i;
    EXPECT_EQ(a[i].metrics.rounds, b[i].metrics.rounds) << "run " << i;
    EXPECT_EQ(a[i].metrics.messages, b[i].metrics.messages) << "run " << i;
    EXPECT_EQ(a[i].metrics.total_bits, b[i].metrics.total_bits)
        << "run " << i;
    EXPECT_EQ(a[i].metrics.max_edge_bits, b[i].metrics.max_edge_bits)
        << "run " << i;
  }
}

TEST(RunMany, ResolveThreads) {
  EXPECT_EQ(sim::resolve_threads(4, 100), 4u);
  EXPECT_EQ(sim::resolve_threads(4, 2), 2u);
  EXPECT_EQ(sim::resolve_threads(1, 100), 1u);
  EXPECT_GE(sim::resolve_threads(0, 100), 1u);
  EXPECT_EQ(sim::resolve_threads(8, 0), 1u);
}

TEST(RunMany, BitIdenticalAcrossThreadCounts) {
  Rng rng(11);
  const Graph g = gen::gnp(120, 0.05, rng);
  const auto factory = make_luby_program(g);
  const auto seeds = seeds_for(12);

  sim::RunManyOptions serial;
  serial.threads = 1;
  const auto base = sim::run_many(g, factory, seeds, serial);
  ASSERT_EQ(base.size(), seeds.size());
  for (const auto& r : base) ASSERT_TRUE(r.metrics.completed);

  for (const unsigned threads : {2u, 4u, 8u}) {
    sim::RunManyOptions parallel;
    parallel.threads = threads;
    expect_same_results(base, sim::run_many(g, factory, seeds, parallel));
  }
}

TEST(RunMany, BitIdenticalAcrossInvocations) {
  Rng rng(12);
  const Graph g = gen::random_regular(96, 6, rng);
  const auto w = gen::uniform_node_weights(96, 1 << 10, rng);
  const auto factory = make_layered_maxis_program(g, w, 1 << 10);
  const auto seeds = seeds_for(8);

  sim::RunManyOptions opts;
  opts.threads = 4;
  opts.policy = sim::BandwidthPolicy::congest(32);
  const auto first = sim::run_many(g, factory, seeds, opts);
  const auto second = sim::run_many(g, factory, seeds, opts);
  expect_same_results(first, second);
}

TEST(RunMany, MatchesSingleNetworkRuns) {
  // The batch must agree with one-off Network::run calls per seed.
  Rng rng(13);
  const Graph g = gen::gnp(64, 0.08, rng);
  const auto factory = make_luby_program(g);
  const auto seeds = seeds_for(6);

  sim::RunManyOptions opts;
  opts.threads = 3;
  const auto batch = sim::run_many(g, factory, seeds, opts);
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    sim::Network net(g);
    sim::RunOptions single;
    single.seed = seeds[i];
    const auto solo = net.run(factory, single);
    EXPECT_EQ(batch[i].outputs, solo.outputs) << "seed index " << i;
    EXPECT_EQ(batch[i].metrics.rounds, solo.metrics.rounds);
  }
}

TEST(RunMany, ResultsAreValidIndependentSets) {
  Rng rng(14);
  const Graph g = gen::power_law(150, 2.5, 4.0, rng);
  const auto factory = make_luby_program(g);
  const auto seeds = seeds_for(10);
  sim::RunManyOptions opts;
  opts.threads = 4;
  for (const auto& run : sim::run_many(g, factory, seeds, opts)) {
    ASSERT_TRUE(run.metrics.completed);
    std::vector<NodeId> is;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (run.outputs[v] == kOutInIs) is.push_back(v);
    }
    EXPECT_TRUE(is_maximal_independent_set(g, is));
  }
}

TEST(RunMany, PropagatesPerRunExceptions) {
  // A program that violates the CONGEST cap in every run: the batch must
  // rethrow instead of swallowing the failure.
  class Chatty final : public sim::NodeProgram {
    void round(sim::Ctx& ctx) override {
      sim::Message m(1);
      for (int i = 0; i < 64; ++i) m.push(0, 64);
      if (ctx.degree() > 0) ctx.send(0, m);
      ctx.halt(0);
    }
  };
  const Graph g = gen::cycle(8);
  const auto seeds = seeds_for(4);
  sim::RunManyOptions opts;
  opts.threads = 2;
  opts.policy = sim::BandwidthPolicy::congest(8, /*enforce=*/true);
  EXPECT_THROW(
      sim::run_many(
          g, [](NodeId) { return std::make_unique<Chatty>(); }, seeds, opts),
      EnsureError);
}

TEST(RunMany, EmptySeedSet) {
  const Graph g = gen::path(4);
  const auto factory = make_luby_program(g);
  EXPECT_TRUE(sim::run_many(g, factory, {}, {}).empty());
}

TEST(RunManyTasks, DeterministicOrderAndValues) {
  const auto seeds = seeds_for(9);
  auto task = [](std::uint64_t seed, std::size_t index) {
    Rng rng(seed);
    return static_cast<double>(rng.next() % 1000) +
           static_cast<double>(index) * 1e6;
  };
  const auto serial = sim::run_many_tasks(seeds, 1, task);
  for (const unsigned threads : {2u, 4u}) {
    EXPECT_EQ(serial, sim::run_many_tasks(seeds, threads, task));
  }
}

}  // namespace
}  // namespace distapx
