#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "graph/generators.hpp"
#include "graph/line_graph.hpp"
#include "sim/aggregation.hpp"
#include "sim/message.hpp"
#include "sim/network.hpp"
#include "support/assert.hpp"

namespace distapx {
namespace {

TEST(Message, BitAccounting) {
  sim::Message m(3);
  m.push(5, 4).push(1, 1);
  EXPECT_EQ(m.type(), 3u);
  EXPECT_EQ(m.num_fields(), 2u);
  EXPECT_EQ(m.field(0), 5u);
  EXPECT_EQ(m.field(1), 1u);
  EXPECT_EQ(m.total_bits(), sim::Message::kTypeBits + 5);
}

TEST(Message, RejectsOverflowingField) {
  sim::Message m(0);
  EXPECT_THROW(m.push(16, 4), EnsureError);
  EXPECT_THROW(m.push(1, 0), EnsureError);
  m.push(~std::uint64_t{0}, 64);  // full width is fine
}

TEST(Message, RealFields) {
  sim::Message m(1);
  m.push_real(0.375, 32);
  EXPECT_DOUBLE_EQ(m.field_real(0), 0.375);
  EXPECT_EQ(m.total_bits(), sim::Message::kTypeBits + 32);
}

TEST(BandwidthPolicy, Caps) {
  EXPECT_EQ(sim::BandwidthPolicy::local().cap_bits(1000), 0u);
  EXPECT_EQ(sim::BandwidthPolicy::congest(8).cap_bits(1024), 80u);
  EXPECT_EQ(sim::BandwidthPolicy::congest(8).cap_bits(1025), 88u);
}

/// Flood: node 0 starts a wave; every node halts with the round it first
/// heard the wave, i.e. its BFS distance.
class FloodProgram final : public sim::NodeProgram {
 public:
  void init(sim::Ctx& ctx) override {
    if (ctx.id() == 0) {
      ctx.broadcast(sim::Message(1));
      ctx.halt(0);
    }
  }
  void round(sim::Ctx& ctx) override {
    if (!ctx.inbox().empty()) {
      ctx.broadcast(sim::Message(1));
      ctx.halt(ctx.round());
    }
  }
};

TEST(Network, FloodComputesBfsDepth) {
  const Graph g = gen::path(6);
  sim::Network net(g);
  sim::RunOptions opts;
  const auto res = net.run(
      [](NodeId) { return std::make_unique<FloodProgram>(); }, opts);
  EXPECT_TRUE(res.metrics.completed);
  for (NodeId v = 0; v < 6; ++v) {
    EXPECT_EQ(res.outputs[v], static_cast<std::int64_t>(v));
  }
  EXPECT_EQ(res.metrics.rounds, 5u);
}

TEST(Network, RoundCapStopsRun) {
  // A program that never halts.
  class Stubborn final : public sim::NodeProgram {
    void round(sim::Ctx&) override {}
  };
  const Graph g = gen::path(3);
  sim::Network net(g);
  sim::RunOptions opts;
  opts.max_rounds = 10;
  const auto res = net.run(
      [](NodeId) { return std::make_unique<Stubborn>(); }, opts);
  EXPECT_FALSE(res.metrics.completed);
  EXPECT_EQ(res.metrics.rounds, 10u);
}

TEST(Network, DeterministicAcrossRuns) {
  // Nodes output a few random bits; same seed must reproduce exactly.
  class RandOut final : public sim::NodeProgram {
    void round(sim::Ctx& ctx) override {
      ctx.halt(static_cast<std::int64_t>(ctx.rng().next() & 0xffff));
    }
  };
  const Graph g = gen::cycle(8);
  sim::RunOptions opts;
  opts.seed = 77;
  sim::Network net(g);
  const auto r1 = net.run(
      [](NodeId) { return std::make_unique<RandOut>(); }, opts);
  const auto r2 = net.run(
      [](NodeId) { return std::make_unique<RandOut>(); }, opts);
  EXPECT_EQ(r1.outputs, r2.outputs);
  opts.seed = 78;
  const auto r3 = net.run(
      [](NodeId) { return std::make_unique<RandOut>(); }, opts);
  EXPECT_NE(r1.outputs, r3.outputs);
}

TEST(Network, BandwidthEnforcement) {
  // A program that sends way more than O(log n) bits on one edge.
  class Chatty final : public sim::NodeProgram {
    void round(sim::Ctx& ctx) override {
      sim::Message m(1);
      for (int i = 0; i < 64; ++i) m.push(0, 64);
      if (ctx.degree() > 0) ctx.send(0, m);
      ctx.halt(0);
    }
  };
  const Graph g = gen::path(4);
  sim::Network net(g);
  sim::RunOptions opts;
  opts.policy = sim::BandwidthPolicy::congest(8, true);
  EXPECT_THROW(net.run([](NodeId) { return std::make_unique<Chatty>(); },
                       opts),
               EnsureError);
  // Unenforced: records the violation instead.
  opts.policy = sim::BandwidthPolicy::congest(8, false);
  const auto res = net.run(
      [](NodeId) { return std::make_unique<Chatty>(); }, opts);
  EXPECT_GT(res.metrics.max_edge_bits, res.metrics.bandwidth_cap);
}

/// Sends exactly `bits` declared bits on port 0 in round 1, then halts.
class FixedSender final : public sim::NodeProgram {
 public:
  explicit FixedSender(int bits) : bits_(bits) {}
  void round(sim::Ctx& ctx) override {
    if (ctx.degree() > 0) {
      sim::Message m(1);
      int remaining = bits_ - sim::Message::kTypeBits;
      while (remaining > 0) {
        const int field = std::min(remaining, 64);
        m.push(0, field);
        remaining -= field;
      }
      ctx.send(0, m);
    }
    ctx.halt(0);
  }

 private:
  int bits_;
};

TEST(BandwidthEnforcement, OverSendThrowsWhenEnforcing) {
  const Graph g = gen::path(3);
  sim::Network net(g);
  sim::RunOptions opts;
  opts.policy = sim::BandwidthPolicy::congest(8, /*enforce=*/true);
  const std::uint32_t cap = opts.policy.cap_bits(g.num_nodes());
  // One bit over the cap is already a violation.
  EXPECT_THROW(net.run(
                   [&](NodeId) {
                     return std::make_unique<FixedSender>(
                         static_cast<int>(cap) + 1);
                   },
                   opts),
               EnsureError);
}

TEST(BandwidthEnforcement, ExactlyAtCapIsLegal) {
  const Graph g = gen::path(3);
  sim::Network net(g);
  sim::RunOptions opts;
  opts.policy = sim::BandwidthPolicy::congest(8, /*enforce=*/true);
  const std::uint32_t cap = opts.policy.cap_bits(g.num_nodes());
  const auto res = net.run(
      [&](NodeId) {
        return std::make_unique<FixedSender>(static_cast<int>(cap));
      },
      opts);
  EXPECT_TRUE(res.metrics.completed);
  EXPECT_EQ(res.metrics.max_edge_bits, cap);
  EXPECT_EQ(res.metrics.bandwidth_cap, cap);
}

TEST(BandwidthEnforcement, UnenforcedOnlyRecordsTheViolation) {
  const Graph g = gen::path(3);
  sim::Network net(g);
  sim::RunOptions opts;
  opts.policy = sim::BandwidthPolicy::congest(8, /*enforce=*/false);
  const std::uint32_t cap = opts.policy.cap_bits(g.num_nodes());
  const int sent = static_cast<int>(cap) * 3;
  const auto res = net.run(
      [&](NodeId) { return std::make_unique<FixedSender>(sent); }, opts);
  EXPECT_TRUE(res.metrics.completed);
  // The violation is visible in the metrics, precisely.
  EXPECT_EQ(res.metrics.max_edge_bits, static_cast<std::uint32_t>(sent));
  EXPECT_EQ(res.metrics.bandwidth_cap, cap);
  EXPECT_GT(res.metrics.max_edge_bits, res.metrics.bandwidth_cap);
}

TEST(BandwidthEnforcement, LocalPolicyNeverTrips) {
  const Graph g = gen::path(3);
  sim::Network net(g);
  sim::RunOptions opts;
  opts.policy = sim::BandwidthPolicy::local();
  const auto res = net.run(
      [&](NodeId) { return std::make_unique<FixedSender>(100000); }, opts);
  EXPECT_TRUE(res.metrics.completed);
  EXPECT_EQ(res.metrics.bandwidth_cap, 0u);
  EXPECT_EQ(res.metrics.max_edge_bits, 100000u);
}

TEST(BandwidthEnforcement, NetworkIsReusableAfterViolation) {
  // An enforcing run that throws must not poison the instance: the next
  // run on the same Network starts from clean transport state.
  const Graph g = gen::path(3);
  sim::Network net(g);
  sim::RunOptions opts;
  opts.policy = sim::BandwidthPolicy::congest(8, /*enforce=*/true);
  const std::uint32_t cap = opts.policy.cap_bits(g.num_nodes());
  EXPECT_THROW(net.run(
                   [&](NodeId) {
                     return std::make_unique<FixedSender>(
                         static_cast<int>(cap) * 2);
                   },
                   opts),
               EnsureError);
  const auto res = net.run(
      [&](NodeId) {
        return std::make_unique<FixedSender>(static_cast<int>(cap));
      },
      opts);
  EXPECT_TRUE(res.metrics.completed);
  EXPECT_EQ(res.metrics.max_edge_bits, cap);
}

TEST(Network, MessagesToHaltedNodesAreDropped) {
  // Node 0 halts immediately; node 1 keeps sending to it; run ends when
  // node 1 halts too. No crash, no delivery to a halted node.
  class Quick final : public sim::NodeProgram {
   public:
    void init(sim::Ctx& ctx) override {
      if (ctx.id() == 0) ctx.halt(0);
    }
    void round(sim::Ctx& ctx) override {
      EXPECT_NE(ctx.id(), 0u);
      ctx.broadcast(sim::Message(1));
      if (ctx.round() == 3) ctx.halt(1);
    }
  };
  const Graph g = gen::path(2);
  sim::Network net(g);
  sim::RunOptions opts;
  const auto res = net.run(
      [](NodeId) { return std::make_unique<Quick>(); }, opts);
  EXPECT_TRUE(res.metrics.completed);
}

TEST(Network, PortsAndNeighborsConsistent) {
  class PortCheck final : public sim::NodeProgram {
    void round(sim::Ctx& ctx) override {
      for (std::uint32_t p = 0; p < ctx.degree(); ++p) {
        const NodeId nbr = ctx.neighbor(p);
        EXPECT_EQ(ctx.port_of(nbr), p);
        EXPECT_NE(ctx.edge_of(p), kInvalidEdge);
      }
      EXPECT_EQ(ctx.port_of(ctx.id()), UINT32_MAX);
      ctx.halt(0);
    }
  };
  Rng rng(5);
  const Graph g = gen::gnp(20, 0.3, rng);
  sim::Network net(g);
  sim::RunOptions opts;
  const auto res = net.run(
      [](NodeId) { return std::make_unique<PortCheck>(); }, opts);
  EXPECT_TRUE(res.metrics.completed);
}

// ---- aggregation engine ---------------------------------------------------

/// One-round program whose output is its first aggregate (sum of neighbor
/// ids) — used to validate the fold machinery in both agent topologies.
class SumIdsProgram final : public sim::AggProgram {
 public:
  std::vector<int> state_bits() const override { return {32}; }
  std::vector<sim::Aggregator> aggregators() const override {
    return {sim::agg_sum(
        [](std::span<const std::uint64_t> s) { return s[0]; }, 40)};
  }
  void init(sim::AggCtx& ctx) override { ctx.state()[0] = ctx.agent(); }
  void round(sim::AggCtx& ctx) override {
    ctx.halt(static_cast<std::int64_t>(ctx.aggregates()[0]));
  }
};

TEST(Aggregation, NodeModeSumsNeighborIds) {
  const Graph g = gen::cycle(5);
  SumIdsProgram prog;
  sim::RunOptions opts;
  opts.policy = sim::BandwidthPolicy::local();
  const auto res = sim::run_on_nodes(g, prog, opts);
  EXPECT_TRUE(res.metrics.completed);
  for (NodeId v = 0; v < 5; ++v) {
    std::uint64_t expect = 0;
    for (const HalfEdge& he : g.neighbors(v)) expect += he.to;
    EXPECT_EQ(res.outputs[v], static_cast<std::int64_t>(expect));
  }
}

TEST(Aggregation, LineModeMatchesExplicitLineGraph) {
  Rng rng(6);
  const Graph g = gen::gnp(18, 0.25, rng);
  const LineGraph lg(g);

  SumIdsProgram prog;
  sim::RunOptions opts;
  opts.policy = sim::BandwidthPolicy::local();
  const auto on_line = sim::run_on_line_graph(g, prog, opts);
  // Reference: fold neighbor ids on the explicit line graph.
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    std::uint64_t expect = 0;
    for (const HalfEdge& he : lg.graph().neighbors(lg.line_node(e))) {
      expect += he.to;
    }
    EXPECT_EQ(on_line.outputs[e], static_cast<std::int64_t>(expect))
        << "line node " << e;
  }
}

TEST(Aggregation, LineModeDegrees) {
  Rng rng(7);
  const Graph g = gen::gnp(15, 0.3, rng);
  class DegreeOut final : public sim::AggProgram {
   public:
    std::vector<int> state_bits() const override { return {8}; }
    std::vector<sim::Aggregator> aggregators() const override {
      return {sim::agg_or(
          [](std::span<const std::uint64_t>) { return std::uint64_t{0}; })};
    }
    void init(sim::AggCtx& ctx) override { ctx.state()[0] = 0; }
    void round(sim::AggCtx& ctx) override { ctx.halt(ctx.degree()); }
  };
  DegreeOut prog;
  sim::RunOptions opts;
  opts.policy = sim::BandwidthPolicy::local();
  const auto res = sim::run_on_line_graph(g, prog, opts);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto [u, v] = g.endpoints(e);
    EXPECT_EQ(res.outputs[e], g.degree(u) + g.degree(v) - 2);
  }
}

TEST(Aggregation, MinMaxAndBooleanAggregators) {
  const Graph g = gen::star(5);  // center 0
  class MultiAgg final : public sim::AggProgram {
   public:
    std::vector<int> state_bits() const override { return {16}; }
    std::vector<sim::Aggregator> aggregators() const override {
      auto id = [](std::span<const std::uint64_t> s) { return s[0]; };
      return {sim::agg_min(id, 16), sim::agg_max(id, 16),
              sim::agg_and([](std::span<const std::uint64_t> s) {
                return static_cast<std::uint64_t>(s[0] > 0);
              }),
              sim::agg_or([](std::span<const std::uint64_t> s) {
                return static_cast<std::uint64_t>(s[0] == 3);
              })};
    }
    void init(sim::AggCtx& ctx) override {
      ctx.state()[0] = ctx.agent() + 1;  // 1..5
    }
    void round(sim::AggCtx& ctx) override {
      if (ctx.agent() != 0) {
        ctx.halt(0);
        return;
      }
      const auto a = ctx.aggregates();
      EXPECT_EQ(a[0], 2u);  // min neighbor value
      EXPECT_EQ(a[1], 5u);  // max
      EXPECT_EQ(a[2], 1u);  // all > 0
      EXPECT_EQ(a[3], 1u);  // some == 3
      ctx.halt(1);
    }
  };
  MultiAgg prog;
  sim::RunOptions opts;
  opts.policy = sim::BandwidthPolicy::local();
  const auto res = sim::run_on_nodes(g, prog, opts);
  EXPECT_EQ(res.outputs[0], 1);
}

TEST(Aggregation, StateWidthValidation) {
  const Graph g = gen::path(3);
  class TooWide final : public sim::AggProgram {
   public:
    std::vector<int> state_bits() const override { return {4}; }
    std::vector<sim::Aggregator> aggregators() const override {
      return {sim::agg_or(
          [](std::span<const std::uint64_t>) { return std::uint64_t{0}; })};
    }
    void init(sim::AggCtx& ctx) override { ctx.state()[0] = 999; }
    void round(sim::AggCtx& ctx) override { ctx.halt(0); }
  };
  TooWide prog;
  sim::RunOptions opts;
  opts.policy = sim::BandwidthPolicy::local();
  EXPECT_THROW(sim::run_on_nodes(g, prog, opts), EnsureError);
}

TEST(Aggregation, NaiveCongestionFormula) {
  const Graph s = gen::star(9);  // center degree 8
  EXPECT_EQ(sim::naive_line_congestion_bits(s, 10), 70u);  // (8-1)*10
  const Graph p = gen::path(3);
  EXPECT_EQ(sim::naive_line_congestion_bits(p, 10), 10u);  // (2-1)*10
}

TEST(Aggregation, CongestionStaysBoundedOnLineGraph) {
  // The Theorem 2.8 claim: line-graph execution under aggregation keeps
  // per-edge bits independent of Δ.
  Rng rng(8);
  const Graph g = gen::star(60);  // Δ = 59, line graph is K_59
  SumIdsProgram prog;
  sim::RunOptions opts;
  opts.policy = sim::BandwidthPolicy::congest(32);
  const auto res = sim::run_on_line_graph(g, prog, opts);
  EXPECT_LE(res.metrics.max_edge_bits, res.metrics.bandwidth_cap);
  EXPECT_GT(sim::naive_line_congestion_bits(g, 32),
            res.metrics.bandwidth_cap);
}


TEST(Aggregation, NaiveLineModeSameOutputsHigherCost) {
  // The naive transport runs the identical algorithm (same per-agent RNG
  // streams), so outputs match the Thm 2.8 execution exactly; only the
  // congestion accounting differs.
  Rng rng(9);
  const Graph g = gen::gnp(30, 0.2, rng);
  SumIdsProgram prog_a, prog_b;
  sim::RunOptions opts;
  opts.policy = sim::BandwidthPolicy::local();
  const auto agg = sim::run_on_line_graph(g, prog_a, opts);
  const auto naive = sim::run_on_line_graph_naive(g, prog_b, opts);
  EXPECT_EQ(agg.outputs, naive.outputs);
  EXPECT_EQ(agg.super_rounds, naive.super_rounds);
  EXPECT_GT(naive.metrics.max_edge_bits, agg.metrics.max_edge_bits);
}

TEST(Aggregation, NaiveCostGrowsWithDegree) {
  SumIdsProgram prog_small, prog_big;
  sim::RunOptions opts;
  opts.policy = sim::BandwidthPolicy::local();
  const auto small = sim::run_on_line_graph_naive(gen::star(9), prog_small,
                                                  opts);
  const auto big = sim::run_on_line_graph_naive(gen::star(65), prog_big,
                                                opts);
  EXPECT_GE(big.metrics.max_edge_bits, 7 * small.metrics.max_edge_bits);
}

}  // namespace
}  // namespace distapx
