// The generator-spec parser (graph/genspec.hpp): a valid spec for every
// family, plus the malformed-spec error paths that used to die inside the
// CLI's usage_error instead of throwing something testable.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "graph/genspec.hpp"
#include "support/random.hpp"

namespace distapx {
namespace {

/// One known-good spec per family; ValidSpecForEveryFamily asserts the map
/// stays in sync with gen::spec_families().
const std::map<std::string, std::string>& sample_specs() {
  static const std::map<std::string, std::string> specs = {
      {"gnp", "gnp:80:0.05"},
      {"regular", "regular:64:4"},
      {"bounded", "bounded:60:5"},
      {"bipartite", "bipartite:30:40:0.1"},
      {"tree", "tree:50"},
      {"powerlaw", "powerlaw:100:2.5:4"},
      {"path", "path:17"},
      {"cycle", "cycle:12"},
      {"star", "star:9"},
      {"complete", "complete:8"},
      {"grid", "grid:5:7"},
      {"hypercube", "hypercube:4"},
      {"cbipartite", "cbipartite:4:6"},
      {"btree", "btree:5"},
      {"caterpillar", "caterpillar:10:3"},
      {"barbell", "barbell:5:4"},
      {"lollipop", "lollipop:6:5"},
  };
  return specs;
}

TEST(GenSpec, ValidSpecForEveryFamily) {
  ASSERT_EQ(sample_specs().size(), gen::spec_families().size());
  for (const std::string& family : gen::spec_families()) {
    const auto it = sample_specs().find(family);
    ASSERT_NE(it, sample_specs().end())
        << "no sample spec for family " << family;
    Rng rng(7);
    const Graph g = gen::from_spec(it->second, rng);
    EXPECT_GT(g.num_nodes(), 0u) << it->second;
  }
}

TEST(GenSpec, KnownTopologies) {
  Rng rng(1);
  EXPECT_EQ(gen::from_spec("path:17", rng).num_edges(), 16u);
  EXPECT_EQ(gen::from_spec("cycle:12", rng).num_edges(), 12u);
  EXPECT_EQ(gen::from_spec("star:9", rng).num_edges(), 8u);
  EXPECT_EQ(gen::from_spec("complete:8", rng).num_edges(), 28u);
  EXPECT_EQ(gen::from_spec("grid:5:7", rng).num_nodes(), 35u);
  EXPECT_EQ(gen::from_spec("hypercube:4", rng).num_nodes(), 16u);
  EXPECT_EQ(gen::from_spec("cbipartite:4:6", rng).num_edges(), 24u);
  EXPECT_EQ(gen::from_spec("btree:5", rng).num_nodes(), 31u);
  EXPECT_EQ(gen::from_spec("caterpillar:10:3", rng).num_nodes(), 40u);
  const Graph reg = gen::from_spec("regular:64:4", rng);
  EXPECT_LE(reg.max_degree(), 4u);
}

TEST(GenSpec, ParseRoundTrip) {
  const auto parsed = gen::parse_spec("bipartite:30:40:0.1");
  EXPECT_EQ(parsed.family, "bipartite");
  ASSERT_EQ(parsed.args.size(), 3u);
  EXPECT_EQ(parsed.args[2], "0.1");
  EXPECT_EQ(parsed.to_string(), "bipartite:30:40:0.1");
}

TEST(GenSpec, DeterministicForFixedRngSeed) {
  for (const auto& [family, spec] : sample_specs()) {
    Rng a(42), b(42);
    const Graph ga = gen::from_spec(spec, a);
    const Graph gb = gen::from_spec(spec, b);
    EXPECT_EQ(ga.num_nodes(), gb.num_nodes()) << spec;
    EXPECT_EQ(ga.num_edges(), gb.num_edges()) << spec;
  }
}

TEST(GenSpec, UnknownFamily) {
  Rng rng(1);
  EXPECT_THROW(gen::from_spec("torus:5:5", rng), gen::SpecError);
  EXPECT_THROW(gen::from_spec("", rng), gen::SpecError);
  EXPECT_THROW(gen::from_spec(":5", rng), gen::SpecError);
}

TEST(GenSpec, WrongParameterCount) {
  EXPECT_THROW(gen::parse_spec("gnp:100"), gen::SpecError);
  EXPECT_THROW(gen::parse_spec("gnp:100:0.1:7"), gen::SpecError);
  EXPECT_THROW(gen::parse_spec("path"), gen::SpecError);
  EXPECT_THROW(gen::parse_spec("grid:4"), gen::SpecError);
}

TEST(GenSpec, MalformedNumbers) {
  Rng rng(1);
  EXPECT_THROW(gen::from_spec("path:ten", rng), gen::SpecError);
  EXPECT_THROW(gen::from_spec("path:-5", rng), gen::SpecError);
  EXPECT_THROW(gen::from_spec("path:12x", rng), gen::SpecError);
  EXPECT_THROW(gen::from_spec("gnp:100:zero", rng), gen::SpecError);
  EXPECT_THROW(gen::from_spec("path:999999999999999", rng), gen::SpecError);
}

TEST(GenSpec, OversizedGraphsFailAtParseTime) {
  // Each parameter is individually in range but the product (or clique
  // square) would overflow the 32-bit node/edge ids: must be a SpecError
  // at parse time, not a crash inside the generator.
  EXPECT_THROW(gen::parse_spec("grid:65536:65536"), gen::SpecError);
  EXPECT_THROW(gen::parse_spec("cbipartite:100000:100000"), gen::SpecError);
  EXPECT_THROW(gen::parse_spec("caterpillar:100000000:100"), gen::SpecError);
  EXPECT_THROW(gen::parse_spec("complete:100000"), gen::SpecError);
  EXPECT_THROW(gen::parse_spec("barbell:100000:0"), gen::SpecError);
  EXPECT_NO_THROW(gen::parse_spec("grid:1000:1000"));
  EXPECT_NO_THROW(gen::parse_spec("complete:1000"));
  // Only the clique parameter is squared: a small clique with a long
  // bridge/tail is linear-sized and must stay legal.
  EXPECT_NO_THROW(gen::parse_spec("barbell:8:100000"));
  EXPECT_NO_THROW(gen::parse_spec("lollipop:8:100000"));
  // Density-driven families: the *expected edge count* is the quantity
  // that overflows, not any single integer parameter.
  EXPECT_THROW(gen::parse_spec("gnp:100000000:0.5"), gen::SpecError);
  EXPECT_THROW(gen::parse_spec("bipartite:100000:100000:0.5"),
               gen::SpecError);
  EXPECT_THROW(gen::parse_spec("powerlaw:100000000:2.5:100"),
               gen::SpecError);
  EXPECT_NO_THROW(gen::parse_spec("gnp:100000:0.001"));
}

TEST(GenSpec, NonFiniteDoublesRejected) {
  EXPECT_THROW(gen::parse_spec("powerlaw:100:nan:4"), gen::SpecError);
  EXPECT_THROW(gen::parse_spec("powerlaw:100:inf:4"), gen::SpecError);
}

TEST(GenSpec, ProbabilityRange) {
  Rng rng(1);
  EXPECT_THROW(gen::from_spec("gnp:100:1.5", rng), gen::SpecError);
  EXPECT_THROW(gen::from_spec("gnp:100:-0.1", rng), gen::SpecError);
  EXPECT_THROW(gen::from_spec("bipartite:10:10:2", rng), gen::SpecError);
  EXPECT_NO_THROW(gen::from_spec("gnp:100:0", rng));
  EXPECT_NO_THROW(gen::from_spec("gnp:20:1", rng));
}

TEST(GenSpec, ErrorMessagesNameTheSpec) {
  try {
    gen::parse_spec("gnp:100");
    FAIL() << "expected SpecError";
  } catch (const gen::SpecError& e) {
    EXPECT_NE(std::string(e.what()).find("gnp:100"), std::string::npos);
  }
}

// ---- negative paths: exact diagnostics -------------------------------------
//
// The batch server and the daemon forward these messages verbatim (behind
// a job-file line number), so their wording is part of the operator
// contract: the spec, the 1-based parameter index, and the offending
// token must all be present, exactly.

std::string spec_error(const std::string& spec) {
  try {
    gen::parse_spec(spec);
  } catch (const gen::SpecError& e) {
    return e.what();
  }
  return "<no SpecError thrown>";
}

TEST(GenSpecNegativePaths, ExactMessages) {
  EXPECT_EQ(spec_error("gnp:100"),
            "bad generator spec \"gnp:100\": family gnp takes 2 "
            "parameter(s) (gnp:N:P), got 1");
  EXPECT_EQ(spec_error("path:ten"),
            "bad generator spec \"path:ten\": parameter 1 (\"ten\") is "
            "not an integer in [0, 268435456]");
  EXPECT_EQ(spec_error("gnp:100:zero"),
            "bad generator spec \"gnp:100:zero\": parameter 2 (\"zero\") "
            "is not a finite number");
  EXPECT_EQ(spec_error("gnp:100:1.5"),
            "bad generator spec \"gnp:100:1.5\": probability parameter 2 "
            "must be in [0, 1]");
  EXPECT_EQ(spec_error(""), "bad generator spec \"\": empty family name");
  EXPECT_EQ(spec_error("hypercube:40"),
            "bad generator spec \"hypercube:40\": parameter 1 (\"40\") is "
            "not an integer in [0, 27]");

  const std::string unknown = spec_error("torus:5:5");
  EXPECT_NE(unknown.find("bad generator spec \"torus:5:5\": unknown "
                         "family \"torus\" (known: "),
            std::string::npos)
      << unknown;
}

TEST(GenSpecNegativePaths, NonFiniteHexAndOverflowingNumbers) {
  // strtod parses all of these; the strict-decimal contract must not.
  EXPECT_EQ(spec_error("gnp:100:inf"),
            "bad generator spec \"gnp:100:inf\": parameter 2 (\"inf\") "
            "is not a finite number");
  EXPECT_EQ(spec_error("gnp:100:nan"),
            "bad generator spec \"gnp:100:nan\": parameter 2 (\"nan\") "
            "is not a finite number");
  EXPECT_EQ(spec_error("gnp:100:0x1p-4"),
            "bad generator spec \"gnp:100:0x1p-4\": parameter 2 "
            "(\"0x1p-4\") is not a finite number");
  EXPECT_EQ(spec_error("powerlaw:100:1e999:4"),
            "bad generator spec \"powerlaw:100:1e999:4\": parameter 2 "
            "(\"1e999\") is not a finite number");
}

// ---- canonicalization (the result-cache key form) --------------------------

TEST(GenSpecCanonical, NormalizesNumericSpellings) {
  EXPECT_EQ(gen::canonical_spec("gnp:100:0.05"), "gnp:100:0.05");
  EXPECT_EQ(gen::canonical_spec("gnp:0100:0.050"), "gnp:100:0.05");
  EXPECT_EQ(gen::canonical_spec("gnp:100:.05"), "gnp:100:0.05");
  EXPECT_EQ(gen::canonical_spec("gnp:100:5e-2"), "gnp:100:0.05");
  EXPECT_EQ(gen::canonical_spec("grid:007:08"), "grid:7:8");
  EXPECT_EQ(gen::canonical_spec("powerlaw:100:2.50:4"),
            "powerlaw:100:2.5:4");
  // Already-canonical specs are fixed points.
  for (const auto& [family, spec] : sample_specs()) {
    EXPECT_EQ(gen::canonical_spec(spec), spec) << family;
  }
}

TEST(GenSpecCanonical, DistinctWorkloadsStayDistinct) {
  EXPECT_NE(gen::canonical_spec("gnp:100:0.05"),
            gen::canonical_spec("gnp:100:0.06"));
  EXPECT_NE(gen::canonical_spec("grid:6:8"), gen::canonical_spec("grid:8:6"));
}

TEST(GenSpecCanonical, CanonicalFormDescribesTheSameGraph) {
  for (const auto& [family, spec] : sample_specs()) {
    Rng a(11), b(11);
    const Graph ga = gen::from_spec(spec, a);
    const Graph gb = gen::from_spec(gen::canonical_spec(spec), b);
    EXPECT_EQ(ga.num_nodes(), gb.num_nodes()) << family;
    EXPECT_EQ(ga.num_edges(), gb.num_edges()) << family;
  }
}

TEST(GenSpecCanonical, InvalidSpecsStillThrow) {
  EXPECT_THROW(gen::canonical_spec("torus:5:5"), gen::SpecError);
  EXPECT_THROW(gen::canonical_spec("gnp:100"), gen::SpecError);
  EXPECT_THROW(gen::canonical_spec("path:ten"), gen::SpecError);
}

}  // namespace
}  // namespace distapx
