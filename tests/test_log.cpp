// Structured logging: line format, value quoting, level filtering, and
// the per-event token-bucket rate limiter (driven by an injected clock so
// the burst schedule is pinned without sleeping).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "support/log.hpp"

namespace distapx::logx {
namespace {

/// Captures emitted lines and restores every global logger knob on exit,
/// so these tests cannot leak state into suites that log for real.
class LogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_level(Level::kDebug);
    set_rate_limit(10.0, 50.0);
    now_ = 0.0;
    set_clock_for_testing([this] { return now_; });
    set_sink_for_testing([this](const std::string& line) {
      lines_.push_back(line);
    });
  }

  void TearDown() override {
    set_sink_for_testing(nullptr);
    set_clock_for_testing(nullptr);
    set_rate_limit(10.0, 50.0);
    set_level(Level::kInfo);
  }

  double now_ = 0.0;
  std::vector<std::string> lines_;
};

TEST(LogLevel, ParseRoundTripsNames) {
  for (const Level lv : {Level::kDebug, Level::kInfo, Level::kWarn,
                         Level::kError, Level::kOff}) {
    const auto parsed = parse_level(level_name(lv));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, lv);
  }
  EXPECT_FALSE(parse_level("verbose").has_value());
  EXPECT_FALSE(parse_level("").has_value());
}

TEST(LogFormat, BareValuesStayBareQuotedValuesEscape) {
  EXPECT_EQ(format_value("simple"), "simple");
  EXPECT_EQ(format_value("a:b/c.d-42"), "a:b/c.d-42");
  EXPECT_EQ(format_value(""), "\"\"");
  EXPECT_EQ(format_value("has space"), "\"has space\"");
  EXPECT_EQ(format_value("k=v"), "\"k=v\"");
  EXPECT_EQ(format_value("say \"hi\""), "\"say \\\"hi\\\"\"");
  EXPECT_EQ(format_value("back\\slash"), "\"back\\\\slash\"");
  EXPECT_EQ(format_value("line\nbreak"), "\"line\\nbreak\"");
  EXPECT_EQ(format_value(std::string("nul\x01") + "byte"),
            "\"nul\\x01byte\"");
}

TEST_F(LogTest, LineCarriesLevelEventAndFieldsInOrder) {
  info("conn_accepted", {{"conn", 3}, {"peer", "unix"}});
  ASSERT_EQ(lines_.size(), 1u);
  const std::string& line = lines_[0];
  EXPECT_EQ(line.rfind("ts=", 0), 0u);  // starts with a timestamp
  EXPECT_NE(line.find(" level=info event=conn_accepted conn=3 peer=unix\n"),
            std::string::npos);
}

TEST_F(LogTest, FieldValuesAreQuotedWhenNeeded) {
  warn("protocol_error", {{"err", "bad magic"}, {"ok", false}});
  ASSERT_EQ(lines_.size(), 1u);
  EXPECT_NE(lines_[0].find("err=\"bad magic\" ok=0\n"), std::string::npos);
}

TEST_F(LogTest, LevelFilterDropsBelowThreshold) {
  set_level(Level::kWarn);
  debug("a");
  info("b");
  warn("c");
  error("d");
  ASSERT_EQ(lines_.size(), 2u);
  EXPECT_NE(lines_[0].find("event=c"), std::string::npos);
  EXPECT_NE(lines_[1].find("event=d"), std::string::npos);
  set_level(Level::kOff);
  error("e");
  EXPECT_EQ(lines_.size(), 2u);
}

TEST_F(LogTest, BurstIsAllowedThenSuppressedWithCount) {
  set_rate_limit(1.0, 3.0);  // 3-line burst, then 1 line per second
  for (int i = 0; i < 10; ++i) log(Level::kInfo, "storm", {{"i", i}});
  // Burst of 3 passes, the other 7 are dropped.
  ASSERT_EQ(lines_.size(), 3u);

  // One second later one token has refilled; the next line carries the
  // count of everything dropped since the last allowed line.
  now_ = 1.0;
  log(Level::kInfo, "storm", {{"i", 10}});
  ASSERT_EQ(lines_.size(), 4u);
  EXPECT_NE(lines_[3].find("suppressed=7"), std::string::npos);

  // Once a line is allowed the suppressed count resets.
  now_ = 2.0;
  log(Level::kInfo, "storm", {{"i", 11}});
  ASSERT_EQ(lines_.size(), 5u);
  EXPECT_EQ(lines_[4].find("suppressed="), std::string::npos);
}

TEST_F(LogTest, RateLimitIsPerEventName) {
  set_rate_limit(1.0, 1.0);
  info("a");
  info("a");  // dropped: a's bucket is empty
  info("b");  // b has its own bucket
  ASSERT_EQ(lines_.size(), 2u);
  EXPECT_NE(lines_[0].find("event=a"), std::string::npos);
  EXPECT_NE(lines_[1].find("event=b"), std::string::npos);
}

TEST(LogRateLimiter, TokenBucketRefillsAndCaps) {
  RateLimiter rl(2.0, 4.0);  // 2 tokens/s, burst 4
  // Starts full: the first 4 events pass, the 5th does not.
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(rl.allow(0.0));
  EXPECT_FALSE(rl.allow(0.0));
  EXPECT_FALSE(rl.allow(0.25));
  EXPECT_EQ(rl.suppressed(), 2u);
  // Two idle seconds at 2 tokens/s refill to the burst cap (the clamp
  // lands tokens on exactly 4.0, keeping the arithmetic float-safe),
  // never beyond it. (All times here are exact binary fractions.)
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(rl.allow(2.25));
    EXPECT_EQ(rl.suppressed(), 0u);  // reset by the first allowed event
  }
  EXPECT_FALSE(rl.allow(2.25));
  // Same after an arbitrarily long idle stretch.
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(rl.allow(100.0));
  EXPECT_FALSE(rl.allow(100.0));
}

}  // namespace
}  // namespace distapx::logx
