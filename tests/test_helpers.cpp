#include "test_helpers.hpp"

#include <bit>

#include "support/assert.hpp"

namespace distapx::test {

Weight brute_force_maxis_weight(const Graph& g, const NodeWeights& w) {
  const NodeId n = g.num_nodes();
  DISTAPX_ENSURE(n <= 20);
  std::vector<std::uint32_t> adj(n, 0);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto [u, v] = g.endpoints(e);
    adj[u] |= 1u << v;
    adj[v] |= 1u << u;
  }
  Weight best = 0;
  for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
    Weight total = 0;
    bool ok = true;
    for (std::uint32_t rest = mask; rest != 0 && ok; rest &= rest - 1) {
      const auto v = static_cast<NodeId>(std::countr_zero(rest));
      if ((adj[v] & mask) != 0) ok = false;
      total += w[v];
    }
    if (ok && total > best) best = total;
  }
  return best;
}

namespace {
std::size_t mcm_rec(const Graph& g, EdgeId e, std::uint32_t used_mask) {
  if (e == g.num_edges()) return 0;
  std::size_t best = mcm_rec(g, e + 1, used_mask);
  const auto [u, v] = g.endpoints(e);
  if (((used_mask >> u) & 1) == 0 && ((used_mask >> v) & 1) == 0) {
    best = std::max(best, 1 + mcm_rec(g, e + 1,
                                      used_mask | (1u << u) | (1u << v)));
  }
  return best;
}
}  // namespace

std::size_t brute_force_mcm_size(const Graph& g) {
  DISTAPX_ENSURE(g.num_nodes() <= 32);
  DISTAPX_ENSURE(g.num_edges() <= 48);
  return mcm_rec(g, 0, 0);
}

}  // namespace distapx::test
