// Metrics registry: counter/gauge/histogram semantics, bucket and
// quantile math, snapshot lookups, Prometheus rendering, and race-free
// concurrent updates (the MetricsConcurrency suite runs under the TSan CI
// lane).
#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "support/assert.hpp"
#include "support/metrics.hpp"

namespace distapx::metrics {
namespace {

TEST(Metrics, CounterIncReturnsPostIncrementValue) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(c.inc(), 1u);
  EXPECT_EQ(c.inc(), 2u);
  EXPECT_EQ(c.inc(5), 7u);
  EXPECT_EQ(c.value(), 7u);
}

TEST(Metrics, GaugeSetAndAdd) {
  Gauge g;
  EXPECT_EQ(g.value(), 0);
  g.set(42);
  EXPECT_EQ(g.value(), 42);
  g.add(-50);
  EXPECT_EQ(g.value(), -8);
}

TEST(Metrics, RegistryReturnsStableInstancePerName) {
  Registry reg;
  Counter& a = reg.counter("x_total");
  Counter& b = reg.counter("x_total");
  EXPECT_EQ(&a, &b);
  a.inc();
  EXPECT_EQ(b.value(), 1u);
  // A histogram re-registered under the same name keeps its first buckets.
  Histogram& h1 = reg.histogram("lat_ms", {1, 2, 3});
  Histogram& h2 = reg.histogram("lat_ms", {10, 20});
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.bounds().size(), 3u);
}

TEST(Metrics, SnapshotLookupsFallBackWhenAbsent) {
  Registry reg;
  reg.counter("present_total").inc(3);
  reg.gauge("depth").set(-4);
  const Snapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counter_or("present_total"), 3u);
  EXPECT_EQ(snap.counter_or("absent_total", 99), 99u);
  EXPECT_EQ(snap.gauge_or("depth"), -4);
  EXPECT_EQ(snap.gauge_or("absent", 7), 7);
  EXPECT_EQ(snap.histogram("absent"), nullptr);
}

TEST(MetricsHistogram, ObservationsLandInTheRightBuckets) {
  Histogram h({1.0, 2.0, 4.0});
  h.observe(0.5);  // <= 1 -> bucket 0
  h.observe(1.0);  // boundary values belong to their bucket (le semantics)
  h.observe(1.5);  // bucket 1
  h.observe(4.0);  // bucket 2
  h.observe(100);  // overflow
  const HistogramSnapshot s = h.snapshot();
  ASSERT_EQ(s.counts.size(), 4u);
  EXPECT_EQ(s.counts[0], 2u);
  EXPECT_EQ(s.counts[1], 1u);
  EXPECT_EQ(s.counts[2], 1u);
  EXPECT_EQ(s.counts[3], 1u);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.sum, 0.5 + 1.0 + 1.5 + 4.0 + 100);
}

TEST(MetricsHistogram, QuantileInterpolatesWithinBuckets) {
  Histogram h({10.0, 20.0});
  h.observe(5);  // 1 observation in [0, 10]
  h.observe(15);
  h.observe(15);
  h.observe(15);  // 3 observations in (10, 20]
  const HistogramSnapshot s = h.snapshot();
  // rank 1 of 4 lands in the first bucket, interpolated across its width.
  EXPECT_DOUBLE_EQ(s.quantile(0.25), 10.0);
  // rank 2 is the first of three in (10, 20]: one third into the bucket.
  EXPECT_NEAR(s.quantile(0.5), 10.0 + 10.0 / 3.0, 1e-9);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 20.0);
}

TEST(MetricsHistogram, QuantileOverflowPinsToLastBoundAndEmptyIsZero) {
  Histogram h({10.0, 20.0});
  EXPECT_DOUBLE_EQ(h.snapshot().quantile(0.5), 0.0);
  h.observe(1e9);
  // The overflow bucket has no upper edge; the quantile must not invent
  // an extrapolation beyond the ladder.
  EXPECT_DOUBLE_EQ(h.snapshot().quantile(0.99), 20.0);
}

TEST(MetricsHistogram, RejectsNonIncreasingBounds) {
  EXPECT_THROW(Histogram({1.0, 1.0}), EnsureError);
  EXPECT_THROW(Histogram({2.0, 1.0}), EnsureError);
}

TEST(MetricsHistogram, DefaultLatencyLadderIsStrictlyIncreasing) {
  const auto& b = default_latency_buckets_ms();
  ASSERT_GE(b.size(), 2u);
  for (std::size_t i = 1; i < b.size(); ++i) EXPECT_LT(b[i - 1], b[i]);
}

TEST(Metrics, RenderPrometheusGroupsLabelVariantsUnderOneHeader) {
  Registry reg;
  reg.counter("results_ok_total").inc(3);
  reg.histogram("run_latency_ms{algo=\"luby\"}", {1.0, 2.0}).observe(1.5);
  reg.histogram("run_latency_ms{algo=\"nmis\"}", {1.0, 2.0}).observe(0.5);
  const std::string text = render_prometheus(reg.snapshot());

  EXPECT_NE(text.find("# TYPE distapx_results_ok_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("distapx_results_ok_total 3\n"), std::string::npos);
  // Cumulative buckets with the le label appended to the existing block.
  EXPECT_NE(
      text.find("distapx_run_latency_ms_bucket{algo=\"luby\",le=\"1\"} 0\n"),
      std::string::npos);
  EXPECT_NE(
      text.find("distapx_run_latency_ms_bucket{algo=\"luby\",le=\"2\"} 1\n"),
      std::string::npos);
  EXPECT_NE(
      text.find(
          "distapx_run_latency_ms_bucket{algo=\"luby\",le=\"+Inf\"} 1\n"),
      std::string::npos);
  EXPECT_NE(text.find("distapx_run_latency_ms_sum{algo=\"luby\"} 1.5\n"),
            std::string::npos);
  EXPECT_NE(text.find("distapx_run_latency_ms_count{algo=\"luby\"} 1\n"),
            std::string::npos);
  // Both algo variants render, but the # TYPE header appears exactly once.
  EXPECT_NE(text.find("distapx_run_latency_ms_count{algo=\"nmis\"} 1\n"),
            std::string::npos);
  const std::string header = "# TYPE distapx_run_latency_ms histogram\n";
  const std::size_t first = text.find(header);
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(text.find(header, first + 1), std::string::npos);
}

TEST(MetricsConcurrency, ParallelUpdatesNeverLoseCounts) {
  Registry reg;
  Counter& c = reg.counter("hits_total");
  Gauge& g = reg.gauge("depth");
  Histogram& h = reg.histogram("lat_ms", {0.5, 1.0, 2.0});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        c.inc();
        g.add(t % 2 == 0 ? 1 : -1);
        h.observe(static_cast<double>(i % 3));
      }
    });
  }
  // Scrape while the writers run: snapshot() must be race-free and each
  // histogram snapshot self-consistent (count == sum of bucket counts).
  for (int i = 0; i < 50; ++i) {
    const Snapshot snap = reg.snapshot();
    const HistogramSnapshot* hs = snap.histogram("lat_ms");
    ASSERT_NE(hs, nullptr);
    std::uint64_t total = 0;
    for (const std::uint64_t n : hs->counts) total += n;
    EXPECT_EQ(total, hs->count);
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(reg.gauge("depth").value(), 0);
  EXPECT_EQ(h.snapshot().count,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(Metrics, FloatGaugeRegistersSnapshotsAndRenders) {
  Registry reg;
  reg.float_gauge("process_cpu_seconds_total").set(1.5);
  EXPECT_EQ(&reg.float_gauge("process_cpu_seconds_total"),
            &reg.float_gauge("process_cpu_seconds_total"));
  const Snapshot snap = reg.snapshot();
  EXPECT_DOUBLE_EQ(snap.float_or("process_cpu_seconds_total"), 1.5);
  EXPECT_DOUBLE_EQ(snap.float_or("absent", 9.25), 9.25);
  const std::string rendered = render_prometheus(snap);
  EXPECT_NE(rendered.find("# TYPE distapx_process_cpu_seconds_total gauge"),
            std::string::npos);
  EXPECT_NE(rendered.find("distapx_process_cpu_seconds_total 1.5"),
            std::string::npos);
}

TEST(Metrics, RefreshHookRunsBeforeEverySnapshot) {
  Registry reg;
  int calls = 0;
  reg.set_refresh_hook([&reg, &calls] {
    ++calls;
    reg.gauge("sampled").set(calls);
  });
  EXPECT_EQ(reg.snapshot().gauge_or("sampled"), 1);
  EXPECT_EQ(reg.snapshot().gauge_or("sampled"), 2);
  EXPECT_EQ(calls, 2);
}

TEST(Metrics, HistogramRecentWindowsRotateAndExpire) {
  Histogram h({1, 10, 100});
  const double win = h.window_seconds();
  for (int i = 0; i < 8; ++i) h.observe(5.0);

  // Inside the first window: everything is recent.
  EXPECT_EQ(h.recent(0.0).count, 8u);
  // One window later the observations sit in the "other" window and are
  // still reported (recent = last one-to-two windows).
  EXPECT_EQ(h.recent(win + 1).count, 8u);
  h.observe(5.0);
  EXPECT_EQ(h.recent(win + 1).count, 9u);
  // Two windows with no observations: the old ones age out entirely.
  EXPECT_EQ(h.recent(3 * win + 2).count, 0u);
  // The cumulative view never expires.
  EXPECT_EQ(h.snapshot().count, 9u);
  // Recent snapshots support quantiles (sum stays 0 by contract).
  for (int i = 0; i < 10; ++i) h.observe(5.0);
  const HistogramSnapshot recent = h.recent(3 * win + 2);
  EXPECT_EQ(recent.count, 10u);
  EXPECT_EQ(recent.sum, 0.0);
  const double p50 = recent.quantile(0.5);
  EXPECT_GT(p50, 1.0);
  EXPECT_LE(p50, 10.0);
}

TEST(Metrics, SnapshotCarriesRecentHistogramView) {
  Registry reg;
  Histogram& h = reg.histogram("lat_ms", {1, 10, 100});
  for (int i = 0; i < 4; ++i) h.observe(2.0);
  const Snapshot snap = reg.snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].hist.count, 4u);
  EXPECT_EQ(snap.histograms[0].recent.count, 4u);
}

TEST(MetricsConcurrency, RegistrationRacesResolveToOneInstance) {
  Registry reg;
  constexpr int kThreads = 8;
  std::vector<Counter*> seen(kThreads, nullptr);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      seen[static_cast<std::size_t>(t)] = &reg.counter("raced_total");
      reg.counter("raced_total").inc();
    });
  }
  for (auto& w : workers) w.join();
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(seen[0], seen[t]);
  EXPECT_EQ(reg.snapshot().counter_or("raced_total"), 8u);
}

}  // namespace
}  // namespace distapx::metrics
