// Per-job tracing plane: collector span trees, the binary trace
// encoding, ring retention, slowest-K reservoir semantics, rendering,
// and — under the TSan CI lane (TraceConcurrency) — the seqlock slot
// protocol: concurrent publishers and readers must never observe a torn
// trace.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "support/trace.hpp"

namespace distapx::trace {
namespace {

/// Builds a finished trace with `n` top-level spans named s1..sn.
Trace make_trace(std::uint64_t id, const std::string& endpoint,
                 std::uint32_t n) {
  Collector c(id, endpoint);
  for (std::uint32_t i = 1; i <= n; ++i) {
    const std::uint32_t s = c.begin("s" + std::to_string(i));
    c.annotate(s, "i", static_cast<std::uint64_t>(i));
    c.end(s);
  }
  return c.finish();
}

TEST(Trace, CollectorBuildsParentedSpansInOrder) {
  Collector c(7, "submit");
  const std::uint32_t recv = c.begin("recv");
  c.annotate(recv, "conn", std::uint64_t{3});
  c.end(recv);
  const std::uint32_t exec = c.begin("lane-execute");
  const std::uint32_t child = c.begin("cache-lookup", exec);
  c.annotate(child, "outcome", "hit");
  c.end(child);
  c.end(exec);
  const Trace t = c.finish();

  EXPECT_EQ(t.id, 7u);
  EXPECT_EQ(t.endpoint, "submit");
  ASSERT_EQ(t.spans.size(), 3u);
  EXPECT_EQ(t.spans[0].name, "recv");
  EXPECT_EQ(t.spans[0].parent, 0u);
  EXPECT_EQ(t.spans[0].notes, "conn=3");
  EXPECT_EQ(t.spans[1].name, "lane-execute");
  EXPECT_EQ(t.spans[2].name, "cache-lookup");
  EXPECT_EQ(t.spans[2].parent, exec);
  EXPECT_EQ(t.spans[2].notes, "outcome=hit");
  // Child ids are 1-based and ordered: parent id < child id.
  EXPECT_LT(t.spans[2].parent, t.spans[2].id);
  EXPECT_EQ(t.dropped_spans, 0u);
}

TEST(Trace, FinishClosesOpenSpansSnapshotKeepsThemOpen) {
  Collector c(1, "submit");
  const std::uint32_t s = c.begin("respond");
  const Trace snap = c.snapshot();
  ASSERT_EQ(snap.spans.size(), 1u);
  EXPECT_EQ(snap.spans[0].end_ns, 0u) << "snapshot must not close spans";
  const Trace fin = c.finish();
  ASSERT_EQ(fin.spans.size(), 1u);
  EXPECT_NE(fin.spans[0].end_ns, 0u) << "finish must close open spans";
  EXPECT_GE(fin.duration_ns, fin.spans[0].duration_ns());
  (void)s;
}

TEST(Trace, SpanCapCountsDroppedAndIdZeroIsNoOp) {
  Collector c(1, "submit");
  for (std::uint32_t i = 0; i < kMaxSpansPerTrace; ++i) {
    EXPECT_NE(c.begin("s"), 0u);
  }
  const std::uint32_t overflow = c.begin("overflow");
  EXPECT_EQ(overflow, 0u);
  // All operations on the no-op id must be harmless.
  c.annotate(overflow, "k", "v");
  c.end(overflow);
  const Trace t = c.finish();
  EXPECT_EQ(t.spans.size(), kMaxSpansPerTrace);
  EXPECT_EQ(t.dropped_spans, 1u);
}

TEST(Trace, ContextGuardRoutesScopedSpansAndAnnotations) {
  Collector c(9, "spool");
  const std::uint32_t root = c.begin("serve-file");
  {
    const ContextGuard guard(Context{&c, root});
    ScopedSpan span("cache-lookup");
    span.annotate("seed", std::uint64_t{5});
    annotate_current("outcome", "miss");
  }
  annotate_current("ignored", "no-context");  // no-op outside the guard
  c.end(root);
  const Trace t = c.finish();
  ASSERT_EQ(t.spans.size(), 2u);
  EXPECT_EQ(t.spans[1].name, "cache-lookup");
  EXPECT_EQ(t.spans[1].parent, root);
  EXPECT_EQ(t.spans[1].notes, "seed=5 outcome=miss");
}

TEST(Trace, EncodeDecodeRoundTrips) {
  const Trace t = make_trace(42, "submit", 5);
  const std::string bytes = encode_trace(t, /*stamp=*/77, /*max_bytes=*/1 << 16);
  Trace back;
  std::uint64_t stamp = 0;
  ASSERT_TRUE(decode_trace(bytes, back, &stamp));
  EXPECT_EQ(stamp, 77u);
  EXPECT_EQ(back.id, t.id);
  EXPECT_EQ(back.endpoint, t.endpoint);
  EXPECT_EQ(back.duration_ns, t.duration_ns);
  ASSERT_EQ(back.spans.size(), t.spans.size());
  for (std::size_t i = 0; i < t.spans.size(); ++i) {
    EXPECT_EQ(back.spans[i].name, t.spans[i].name);
    EXPECT_EQ(back.spans[i].parent, t.spans[i].parent);
    EXPECT_EQ(back.spans[i].start_ns, t.spans[i].start_ns);
    EXPECT_EQ(back.spans[i].end_ns, t.spans[i].end_ns);
    EXPECT_EQ(back.spans[i].notes, t.spans[i].notes);
  }
}

TEST(Trace, EncodeTruncatesWholeSpansIntoDroppedCount) {
  const Trace t = make_trace(1, "submit", 64);
  // Small budget: only a prefix of spans fits.
  const std::string bytes = encode_trace(t, 1, /*max_bytes=*/256);
  EXPECT_LE(bytes.size(), 256u);
  Trace back;
  ASSERT_TRUE(decode_trace(bytes, back, nullptr));
  EXPECT_LT(back.spans.size(), t.spans.size());
  EXPECT_EQ(back.dropped_spans,
            static_cast<std::uint32_t>(t.spans.size() - back.spans.size()));
  // The survivors are the earliest spans, intact.
  for (std::size_t i = 0; i < back.spans.size(); ++i) {
    EXPECT_EQ(back.spans[i].name, t.spans[i].name);
  }
}

TEST(Trace, DecodeRejectsTruncatedBytes) {
  const Trace t = make_trace(2, "submit", 3);
  const std::string bytes = encode_trace(t, 1, 1 << 16);
  Trace back;
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    EXPECT_FALSE(decode_trace(std::string_view(bytes).substr(0, cut), back,
                              nullptr))
        << "prefix of " << cut << " bytes decoded";
  }
  EXPECT_TRUE(decode_trace(bytes, back, nullptr));
}

TEST(Trace, RingRetainsLastNNewestFirst) {
  SinkOptions opts;
  opts.recent_slots = 4;
  TraceSink sink(opts);
  for (std::uint64_t i = 1; i <= 10; ++i) {
    sink.publish(make_trace(i, "submit", 1));
  }
  EXPECT_EQ(sink.published_total(), 10u);
  const std::vector<Trace> got = sink.recent();
  ASSERT_EQ(got.size(), 4u);
  // Newest first: ids 10, 9, 8, 7.
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].id, 10 - i);
  }
}

TEST(Trace, SlowestTableKeepsTheKSlowestPerEndpoint) {
  SinkOptions opts;
  opts.slowest_per_endpoint = 3;
  TraceSink sink(opts);
  // Publish with synthetic durations; ids track durations for checking.
  for (std::uint64_t d : {50, 10, 90, 20, 70, 30, 60}) {
    Trace t = make_trace(d, "submit", 1);
    t.duration_ns = d * 1'000'000;
    sink.publish(t);
  }
  Trace other = make_trace(999, "spool", 1);
  other.duration_ns = 1;
  sink.publish(other);

  const auto tables = sink.slowest();
  ASSERT_EQ(tables.size(), 2u);  // sorted by endpoint name
  EXPECT_EQ(tables[0].first, "spool");
  ASSERT_EQ(tables[0].second.size(), 1u);
  EXPECT_EQ(tables[0].second[0].id, 999u);
  EXPECT_EQ(tables[1].first, "submit");
  const std::vector<Trace>& slow = tables[1].second;
  ASSERT_EQ(slow.size(), 3u);
  // Slowest first: 90, 70, 60.
  EXPECT_EQ(slow[0].id, 90u);
  EXPECT_EQ(slow[1].id, 70u);
  EXPECT_EQ(slow[2].id, 60u);
}

TEST(Trace, RenderTraceTreeShowsHierarchyAndNotes) {
  Collector c(42, "submit");
  const std::uint32_t exec = c.begin("lane-execute");
  const std::uint32_t child = c.begin("cache-lookup", exec);
  c.annotate(child, "outcome", "hit");
  c.end(child);
  c.end(exec);
  const std::string txt = render_trace_tree(c.finish());
  EXPECT_NE(txt.find("trace 42"), std::string::npos);
  EXPECT_NE(txt.find("endpoint=submit"), std::string::npos);
  EXPECT_NE(txt.find("lane-execute"), std::string::npos);
  EXPECT_NE(txt.find("cache-lookup"), std::string::npos);
  EXPECT_NE(txt.find("outcome=hit"), std::string::npos);
  // The child is indented deeper than its parent.
  EXPECT_LT(txt.find("lane-execute"), txt.find("cache-lookup"));
}

TEST(Trace, FlattenSpansEmitsTopLevelTokens) {
  Collector c(1, "submit");
  const std::uint32_t a = c.begin("queue-wait");
  c.end(a);
  const std::uint32_t b = c.begin("lane-execute");
  const std::uint32_t child = c.begin("compute", b);
  c.end(child);
  c.end(b);
  const std::string flat = flatten_spans(c.finish());
  EXPECT_NE(flat.find("queue-wait="), std::string::npos);
  EXPECT_NE(flat.find("lane-execute="), std::string::npos);
  EXPECT_EQ(flat.find("compute="), std::string::npos)
      << "children stay out of the flat breakdown: " << flat;
}

TEST(Trace, RenderTracezListsRecentAndSlowest) {
  TraceSink sink;
  sink.publish(make_trace(5, "submit", 2));
  const std::string page = render_tracez(sink);
  EXPECT_NE(page.find("tracez"), std::string::npos);
  EXPECT_NE(page.find("trace 5"), std::string::npos);
  EXPECT_NE(page.find("slowest"), std::string::npos);
}

TEST(Trace, KillSwitchFlipsAndRestores) {
  const bool was = enabled();
  set_enabled(false);
  EXPECT_FALSE(enabled());
  set_enabled(true);
  EXPECT_TRUE(enabled());
  set_enabled(was);
}

// ---- the seqlock contention suite (runs under TSan in CI) ----------------

TEST(TraceConcurrency, ConcurrentPublishersAndReaderSeeNoTornTraces) {
  SinkOptions opts;
  opts.recent_slots = 8;  // small ring: writers lap it constantly
  opts.slowest_per_endpoint = 4;
  TraceSink sink(opts);

  constexpr int kWriters = 8;
  constexpr std::uint64_t kPerWriter = 400;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reads{0};

  // The reader hammers recent()/slowest() while writers publish. Every
  // decoded trace must be internally consistent — decode_trace already
  // rejects torn bytes, so consistency here means: the id round-trips
  // into the span payload we encoded for it.
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      for (const Trace& t : sink.recent()) {
        ASSERT_EQ(t.endpoint, "submit");
        ASSERT_EQ(t.spans.size(), 2u);
        ASSERT_EQ(t.spans[0].notes, "id=" + std::to_string(t.id));
      }
      for (const auto& [endpoint, traces] : sink.slowest()) {
        ASSERT_EQ(endpoint, "submit");
        for (const Trace& t : traces) {
          ASSERT_EQ(t.spans.size(), 2u);
          ASSERT_EQ(t.spans[0].notes, "id=" + std::to_string(t.id));
        }
      }
      reads.fetch_add(1, std::memory_order_relaxed);
    }
  });

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (std::uint64_t i = 0; i < kPerWriter; ++i) {
        const std::uint64_t id = static_cast<std::uint64_t>(w) * kPerWriter + i;
        Collector c(id, "submit");
        const std::uint32_t a = c.begin("recv");
        c.annotate(a, "id", id);
        c.end(a);
        const std::uint32_t b = c.begin("lane-execute");
        c.end(b);
        Trace t = c.finish();
        t.duration_ns = id;  // deterministic, distinct durations
        sink.publish(t);
      }
    });
  }
  for (std::thread& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(sink.published_total(), kWriters * kPerWriter);
  EXPECT_GT(reads.load(), 0u);

  // Quiescent invariants. Retention: exactly recent_slots traces, all
  // decodable, newest-first by publish stamp (strictly decreasing ids
  // are not guaranteed across writers, but distinctness is).
  const std::vector<Trace> rec = sink.recent();
  ASSERT_EQ(rec.size(), opts.recent_slots);
  std::set<std::uint64_t> ids;
  for (const Trace& t : rec) ids.insert(t.id);
  EXPECT_EQ(ids.size(), rec.size()) << "duplicate trace in the ring";

  // Slowest-K: the table holds exactly the K largest durations published
  // (durations == ids here, so the global maxima are known).
  const auto tables = sink.slowest();
  ASSERT_EQ(tables.size(), 1u);
  const std::vector<Trace>& slow = tables[0].second;
  ASSERT_EQ(slow.size(), opts.slowest_per_endpoint);
  const std::uint64_t total = kWriters * kPerWriter;
  for (std::size_t i = 0; i < slow.size(); ++i) {
    EXPECT_EQ(slow[i].id, total - 1 - i)
        << "slot " << i << " is not the " << i << "-th slowest";
  }
}

TEST(TraceConcurrency, SharedCollectorAcceptsConcurrentWorkers) {
  Collector c(1, "submit");
  const std::uint32_t root = c.begin("lane-execute");
  constexpr int kThreads = 8;
  constexpr int kSpansEach = 50;
  std::vector<std::thread> workers;
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&] {
      const ContextGuard guard(Context{&c, root});
      for (int i = 0; i < kSpansEach; ++i) {
        ScopedSpan span("compute");
        span.annotate("seed", static_cast<std::uint64_t>(i));
      }
    });
  }
  for (std::thread& t : workers) t.join();
  c.end(root);
  const Trace t = c.finish();
  ASSERT_EQ(t.spans.size(), 1u + kThreads * kSpansEach);
  for (std::size_t i = 1; i < t.spans.size(); ++i) {
    EXPECT_EQ(t.spans[i].parent, root);
    EXPECT_EQ(t.spans[i].name, "compute");
  }
}

}  // namespace
}  // namespace distapx::trace
