// Wide parameterized property sweeps: the paper's guarantees asserted over
// the cross product of topology family × weight regime × algorithm
// configuration. Complements the targeted suites with combinatorial
// breadth at moderate sizes.
#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "coloring/coloring.hpp"
#include "graph/algos.hpp"
#include "graph/generators.hpp"
#include "matching/blossom.hpp"
#include "matching/lr_matching.hpp"
#include "matching/nmm_2eps.hpp"
#include "maxis/coloring_maxis.hpp"
#include "maxis/layered_maxis.hpp"
#include "maxis/local_ratio_seq.hpp"
#include "mis/mis.hpp"
#include "sim/run_many.hpp"
#include "test_helpers.hpp"

namespace distapx {
namespace {

enum class Family { kGnp, kRegular, kTree, kGrid, kStar, kMultipartite };
enum class WeightRegime { kUnit, kUniform, kLogUniform, kExponential };

Graph make_family(Family f, Rng& rng) {
  switch (f) {
    case Family::kGnp:
      return gen::gnp(90, 0.05, rng);
    case Family::kRegular:
      return gen::random_regular(96, 6, rng);
    case Family::kTree:
      return gen::random_tree(120, rng);
    case Family::kGrid:
      return gen::grid(9, 10);
    case Family::kStar:
      return gen::star(70);
    case Family::kMultipartite:
      return gen::complete_multipartite({12, 9, 6});
  }
  return gen::path(8);
}

NodeWeights make_weights(WeightRegime r, NodeId n, Rng& rng) {
  switch (r) {
    case WeightRegime::kUnit:
      return gen::unit_node_weights(n);
    case WeightRegime::kUniform:
      return gen::uniform_node_weights(n, 1 << 10, rng);
    case WeightRegime::kLogUniform:
      return gen::log_uniform_node_weights(n, 1 << 14, rng);
    case WeightRegime::kExponential:
      return gen::exponential_node_weights(n, 1 << 12, rng);
  }
  return gen::unit_node_weights(n);
}

const char* family_name(Family f) {
  switch (f) {
    case Family::kGnp:
      return "gnp";
    case Family::kRegular:
      return "regular";
    case Family::kTree:
      return "tree";
    case Family::kGrid:
      return "grid";
    case Family::kStar:
      return "star";
    case Family::kMultipartite:
      return "multipartite";
  }
  return "?";
}

using SweepParam = std::tuple<Family, WeightRegime>;

class MaxIsSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(MaxIsSweep, BothDistributedAlgorithmsValidAndBoundedVsSeq) {
  const auto [family, regime] = GetParam();
  Rng rng(hash_combine(static_cast<int>(family) * 7,
                       static_cast<int>(regime)));
  const Graph g = make_family(family, rng);
  const auto w = make_weights(regime, g.num_nodes(), rng);

  // Algorithm 2 runs as a 3-seed batch through the run_many scheduler;
  // every seed's output must satisfy the paper's guarantees, and the batch
  // must be bit-identical to a serial execution of the same seed set.
  const Weight max_w = *std::max_element(w.begin(), w.end());
  const auto factory = make_layered_maxis_program(g, w, max_w);
  const std::uint64_t seeds[] = {5, 6, 7};
  sim::RunManyOptions rm;
  rm.policy = sim::BandwidthPolicy::congest(32);
  rm.threads = 2;
  const auto runs = sim::run_many(g, factory, seeds, rm);
  rm.threads = 1;
  const auto serial = sim::run_many(g, factory, seeds, rm);
  std::vector<std::vector<NodeId>> batch_sets;
  for (std::size_t i = 0; i < runs.size(); ++i) {
    ASSERT_TRUE(runs[i].metrics.completed) << family_name(family);
    ASSERT_EQ(runs[i].outputs, serial[i].outputs)
        << family_name(family) << " seed " << seeds[i];
    ASSERT_LE(runs[i].metrics.max_edge_bits, runs[i].metrics.bandwidth_cap);
    std::vector<NodeId> is;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (runs[i].outputs[v] == kOutInIs) is.push_back(v);
    }
    ASSERT_TRUE(is_independent_set(g, is)) << family_name(family);
    batch_sets.push_back(std::move(is));
  }
  const auto& alg2_set = batch_sets.front();  // seed 5, as before

  const auto alg3 = run_coloring_maxis_with(g, w, greedy_coloring(g));
  ASSERT_TRUE(is_independent_set(g, alg3.independent_set));

  // The sequential meta-algorithm (Algorithm 1) with the top-layer policy
  // is the centralized version of Algorithm 2: both carry the same Δ
  // bound, so they should be within Δ of each other on any instance.
  const auto seq =
      seq_local_ratio_maxis(g, w, LocalRatioPolicy::kTopLayerMis);
  const Weight wa = set_weight(w, alg2_set);
  const Weight wb = set_weight(w, alg3.independent_set);
  const Weight ws = set_weight(w, seq.independent_set);
  const Weight delta = std::max<std::uint32_t>(g.max_degree(), 1);
  ASSERT_GT(wa, 0);
  ASSERT_GT(wb, 0);
  EXPECT_GE(wa * delta, ws);
  EXPECT_GE(wb * delta, ws);
  EXPECT_GE(ws * delta, wa);

  // With unit weights the results must be maximal independent sets — for
  // every seed in the batch.
  if (regime == WeightRegime::kUnit) {
    for (const auto& is : batch_sets) {
      EXPECT_TRUE(is_maximal_independent_set(g, is));
    }
    EXPECT_TRUE(is_maximal_independent_set(g, alg3.independent_set));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cross, MaxIsSweep,
    ::testing::Combine(
        ::testing::Values(Family::kGnp, Family::kRegular, Family::kTree,
                          Family::kGrid, Family::kStar,
                          Family::kMultipartite),
        ::testing::Values(WeightRegime::kUnit, WeightRegime::kUniform,
                          WeightRegime::kLogUniform,
                          WeightRegime::kExponential)));

class MatchingSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(MatchingSweep, LrAndNmmValidWithCardinalityFloor) {
  const auto [family, regime] = GetParam();
  Rng rng(hash_combine(static_cast<int>(family) * 13,
                       static_cast<int>(regime)));
  const Graph g = make_family(family, rng);
  if (g.num_edges() == 0) return;
  Rng wrng(9);
  const EdgeWeights ew =
      regime == WeightRegime::kUnit
          ? gen::unit_edge_weights(g.num_edges())
          : gen::uniform_edge_weights(g.num_edges(), 1 << 10, wrng);

  const auto lr = run_lr_matching(g, ew, 5);
  ASSERT_TRUE(is_matching(g, lr.matching)) << family_name(family);
  ASSERT_LE(lr.metrics.max_edge_bits, lr.metrics.bandwidth_cap);

  const auto nmm = run_nmm_2eps_matching(g, 5);
  ASSERT_TRUE(is_matching(g, nmm.matching));

  // Cardinality floor: a maximal matching is at least half of MCM, and
  // both results become maximal after greedy completion.
  const std::size_t opt = blossom_mcm(g).matching.size();
  const auto lr_full = complete_matching_greedily(g, lr.matching);
  const auto nmm_full = complete_matching_greedily(g, nmm.matching);
  EXPECT_GE(lr_full.size() * 2, opt);
  EXPECT_GE(nmm_full.size() * 2, opt);
  if (regime == WeightRegime::kUnit) {
    // Unit-weight local ratio on L(G) is already maximal.
    EXPECT_EQ(lr_full.size(), lr.matching.size());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cross, MatchingSweep,
    ::testing::Combine(
        ::testing::Values(Family::kGnp, Family::kRegular, Family::kTree,
                          Family::kGrid, Family::kStar,
                          Family::kMultipartite),
        ::testing::Values(WeightRegime::kUnit, WeightRegime::kUniform)));

}  // namespace
}  // namespace distapx
