// Wide parameterized property sweeps: the paper's guarantees asserted over
// the cross product of topology family × weight regime × algorithm
// configuration. Complements the targeted suites with combinatorial
// breadth at moderate sizes.
#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "coloring/coloring.hpp"
#include "graph/algos.hpp"
#include "graph/generators.hpp"
#include "matching/blossom.hpp"
#include "matching/exact_mwm.hpp"
#include "matching/hopcroft_karp.hpp"
#include "matching/lr_matching.hpp"
#include "matching/mcm_congest.hpp"
#include "matching/nmm_2eps.hpp"
#include "matching/weighted_2eps.hpp"
#include "maxis/coloring_maxis.hpp"
#include "maxis/exact.hpp"
#include "maxis/greedy_maxis.hpp"
#include "maxis/layered_maxis.hpp"
#include "maxis/local_ratio_seq.hpp"
#include "mis/mis.hpp"
#include "sim/run_many.hpp"
#include "test_helpers.hpp"

namespace distapx {
namespace {

enum class Family { kGnp, kRegular, kTree, kGrid, kStar, kMultipartite };
enum class WeightRegime { kUnit, kUniform, kLogUniform, kExponential };

Graph make_family(Family f, Rng& rng) {
  switch (f) {
    case Family::kGnp:
      return gen::gnp(90, 0.05, rng);
    case Family::kRegular:
      return gen::random_regular(96, 6, rng);
    case Family::kTree:
      return gen::random_tree(120, rng);
    case Family::kGrid:
      return gen::grid(9, 10);
    case Family::kStar:
      return gen::star(70);
    case Family::kMultipartite:
      return gen::complete_multipartite({12, 9, 6});
  }
  return gen::path(8);
}

NodeWeights make_weights(WeightRegime r, NodeId n, Rng& rng) {
  switch (r) {
    case WeightRegime::kUnit:
      return gen::unit_node_weights(n);
    case WeightRegime::kUniform:
      return gen::uniform_node_weights(n, 1 << 10, rng);
    case WeightRegime::kLogUniform:
      return gen::log_uniform_node_weights(n, 1 << 14, rng);
    case WeightRegime::kExponential:
      return gen::exponential_node_weights(n, 1 << 12, rng);
  }
  return gen::unit_node_weights(n);
}

const char* family_name(Family f) {
  switch (f) {
    case Family::kGnp:
      return "gnp";
    case Family::kRegular:
      return "regular";
    case Family::kTree:
      return "tree";
    case Family::kGrid:
      return "grid";
    case Family::kStar:
      return "star";
    case Family::kMultipartite:
      return "multipartite";
  }
  return "?";
}

using SweepParam = std::tuple<Family, WeightRegime>;

class MaxIsSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(MaxIsSweep, BothDistributedAlgorithmsValidAndBoundedVsSeq) {
  const auto [family, regime] = GetParam();
  Rng rng(hash_combine(static_cast<int>(family) * 7,
                       static_cast<int>(regime)));
  const Graph g = make_family(family, rng);
  const auto w = make_weights(regime, g.num_nodes(), rng);

  // Algorithm 2 runs as a 3-seed batch through the run_many scheduler;
  // every seed's output must satisfy the paper's guarantees, and the batch
  // must be bit-identical to a serial execution of the same seed set.
  const Weight max_w = *std::max_element(w.begin(), w.end());
  const auto factory = make_layered_maxis_program(g, w, max_w);
  const std::uint64_t seeds[] = {5, 6, 7};
  sim::RunManyOptions rm;
  rm.policy = sim::BandwidthPolicy::congest(32);
  rm.threads = 2;
  const auto runs = sim::run_many(g, factory, seeds, rm);
  rm.threads = 1;
  const auto serial = sim::run_many(g, factory, seeds, rm);
  std::vector<std::vector<NodeId>> batch_sets;
  for (std::size_t i = 0; i < runs.size(); ++i) {
    ASSERT_TRUE(runs[i].metrics.completed) << family_name(family);
    ASSERT_EQ(runs[i].outputs, serial[i].outputs)
        << family_name(family) << " seed " << seeds[i];
    ASSERT_LE(runs[i].metrics.max_edge_bits, runs[i].metrics.bandwidth_cap);
    std::vector<NodeId> is;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (runs[i].outputs[v] == kOutInIs) is.push_back(v);
    }
    ASSERT_TRUE(is_independent_set(g, is)) << family_name(family);
    batch_sets.push_back(std::move(is));
  }
  const auto& alg2_set = batch_sets.front();  // seed 5, as before

  const auto alg3 = run_coloring_maxis_with(g, w, greedy_coloring(g));
  ASSERT_TRUE(is_independent_set(g, alg3.independent_set));

  // The sequential meta-algorithm (Algorithm 1) with the top-layer policy
  // is the centralized version of Algorithm 2: both carry the same Δ
  // bound, so they should be within Δ of each other on any instance.
  const auto seq =
      seq_local_ratio_maxis(g, w, LocalRatioPolicy::kTopLayerMis);
  const Weight wa = set_weight(w, alg2_set);
  const Weight wb = set_weight(w, alg3.independent_set);
  const Weight ws = set_weight(w, seq.independent_set);
  const Weight delta = std::max<std::uint32_t>(g.max_degree(), 1);
  ASSERT_GT(wa, 0);
  ASSERT_GT(wb, 0);
  EXPECT_GE(wa * delta, ws);
  EXPECT_GE(wb * delta, ws);
  EXPECT_GE(ws * delta, wa);

  // With unit weights the results must be maximal independent sets — for
  // every seed in the batch.
  if (regime == WeightRegime::kUnit) {
    for (const auto& is : batch_sets) {
      EXPECT_TRUE(is_maximal_independent_set(g, is));
    }
    EXPECT_TRUE(is_maximal_independent_set(g, alg3.independent_set));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cross, MaxIsSweep,
    ::testing::Combine(
        ::testing::Values(Family::kGnp, Family::kRegular, Family::kTree,
                          Family::kGrid, Family::kStar,
                          Family::kMultipartite),
        ::testing::Values(WeightRegime::kUnit, WeightRegime::kUniform,
                          WeightRegime::kLogUniform,
                          WeightRegime::kExponential)));

class MatchingSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(MatchingSweep, LrAndNmmValidWithCardinalityFloor) {
  const auto [family, regime] = GetParam();
  Rng rng(hash_combine(static_cast<int>(family) * 13,
                       static_cast<int>(regime)));
  const Graph g = make_family(family, rng);
  if (g.num_edges() == 0) return;
  Rng wrng(9);
  const EdgeWeights ew =
      regime == WeightRegime::kUnit
          ? gen::unit_edge_weights(g.num_edges())
          : gen::uniform_edge_weights(g.num_edges(), 1 << 10, wrng);

  const auto lr = run_lr_matching(g, ew, 5);
  ASSERT_TRUE(is_matching(g, lr.matching)) << family_name(family);
  ASSERT_LE(lr.metrics.max_edge_bits, lr.metrics.bandwidth_cap);

  const auto nmm = run_nmm_2eps_matching(g, 5);
  ASSERT_TRUE(is_matching(g, nmm.matching));

  // Cardinality floor: a maximal matching is at least half of MCM, and
  // both results become maximal after greedy completion.
  const std::size_t opt = blossom_mcm(g).matching.size();
  const auto lr_full = complete_matching_greedily(g, lr.matching);
  const auto nmm_full = complete_matching_greedily(g, nmm.matching);
  EXPECT_GE(lr_full.size() * 2, opt);
  EXPECT_GE(nmm_full.size() * 2, opt);
  if (regime == WeightRegime::kUnit) {
    // Unit-weight local ratio on L(G) is already maximal.
    EXPECT_EQ(lr_full.size(), lr.matching.size());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cross, MatchingSweep,
    ::testing::Combine(
        ::testing::Values(Family::kGnp, Family::kRegular, Family::kTree,
                          Family::kGrid, Family::kStar,
                          Family::kMultipartite),
        ::testing::Values(WeightRegime::kUnit, WeightRegime::kUniform)));

// ---- approximation-ratio conformance sweeps --------------------------------
//
// The sweeps above check structural validity (matchings are matchings, IS
// are independent) plus loose cardinality floors; these check the paper's
// *quantitative* guarantees against exact optima on random small-graph
// sweeps: w(weighted_2eps) >= OPT_MWM/(2+ε) (App B.1, Thm 3.2 extension),
// |mcm_congest| >= |Hopcroft-Karp MCM|/(1+ε) (Thm B.12), and the Δ-bound
// of Theorems 2.1/2.3 for the layered and greedy MaxIS algorithms.

enum class BipFamily { kBipGnp, kGrid, kTree, kPath, kCompleteBip };

/// All bipartite, so Hopcroft-Karp / exact_mwm_bipartite are exact.
Graph make_bipartite_family(BipFamily f, Rng& rng) {
  switch (f) {
    case BipFamily::kBipGnp:
      return gen::bipartite_gnp(26, 26, 0.15, rng);
    case BipFamily::kGrid:
      return gen::grid(6, 8);
    case BipFamily::kTree:
      return gen::random_tree(56, rng);
    case BipFamily::kPath:
      return gen::path(40);
    case BipFamily::kCompleteBip:
      return gen::complete_bipartite(7, 9);
  }
  return gen::path(8);
}

const char* bip_family_name(BipFamily f) {
  switch (f) {
    case BipFamily::kBipGnp:
      return "bip_gnp";
    case BipFamily::kGrid:
      return "grid";
    case BipFamily::kTree:
      return "tree";
    case BipFamily::kPath:
      return "path";
    case BipFamily::kCompleteBip:
      return "cbipartite";
  }
  return "?";
}

using ConformanceParam = std::tuple<BipFamily, int>;  // (family, seed)

class WeightedMatchingConformance
    : public ::testing::TestWithParam<ConformanceParam> {};

TEST_P(WeightedMatchingConformance, Weighted2EpsWithinRatioOfExactMwm) {
  const auto [family, seed] = GetParam();
  Rng rng(hash_combine(static_cast<int>(family) * 31, seed));
  const Graph g = make_bipartite_family(family, rng);
  ASSERT_GT(g.num_edges(), 0u);
  const EdgeWeights ew = gen::uniform_edge_weights(g.num_edges(), 500, rng);

  Weighted2EpsParams params;
  params.epsilon = 0.25;
  const auto res = run_weighted_2eps_matching(
      g, ew, static_cast<std::uint64_t>(seed), params);
  ASSERT_TRUE(is_matching(g, res.matching)) << bip_family_name(family);

  const Weight opt = matching_weight(ew, exact_mwm_bipartite(g, ew).matching);
  const Weight got = matching_weight(ew, res.matching);
  ASSERT_GT(opt, 0) << bip_family_name(family);
  EXPECT_GE(static_cast<double>(got) * (2.0 + params.epsilon),
            static_cast<double>(opt))
      << bip_family_name(family) << " seed " << seed << ": " << got
      << " * (2+eps) < " << opt;
}

INSTANTIATE_TEST_SUITE_P(
    Cross, WeightedMatchingConformance,
    ::testing::Combine(
        ::testing::Values(BipFamily::kBipGnp, BipFamily::kGrid,
                          BipFamily::kTree, BipFamily::kPath,
                          BipFamily::kCompleteBip),
        ::testing::Values(1, 2, 3)));

class McmConformance : public ::testing::TestWithParam<ConformanceParam> {};

TEST_P(McmConformance, OnePlusEpsWithinRatioOfHopcroftKarp) {
  const auto [family, seed] = GetParam();
  Rng rng(hash_combine(static_cast<int>(family) * 37, seed));
  const Graph g = make_bipartite_family(family, rng);
  ASSERT_GT(g.num_edges(), 0u);

  McmCongestParams params;
  params.epsilon = 1.0 / 3.0;
  const auto res =
      run_mcm_1eps_congest(g, static_cast<std::uint64_t>(seed), params);
  ASSERT_TRUE(is_matching(g, res.matching)) << bip_family_name(family);

  const std::size_t opt = hopcroft_karp(g).matching.size();
  EXPECT_GE(static_cast<double>(res.matching.size()) *
                (1.0 + params.epsilon),
            static_cast<double>(opt))
      << bip_family_name(family) << " seed " << seed << ": "
      << res.matching.size() << " * (1+eps) < " << opt;
}

INSTANTIATE_TEST_SUITE_P(
    Cross, McmConformance,
    ::testing::Combine(
        ::testing::Values(BipFamily::kBipGnp, BipFamily::kGrid,
                          BipFamily::kTree, BipFamily::kPath,
                          BipFamily::kCompleteBip),
        ::testing::Values(1, 2, 3)));

/// Small families (n <= 64) where exact_maxis's branch & bound is cheap.
enum class SmallFamily { kGnp, kTree, kGrid, kRegular, kCycle, kStar };

Graph make_small_family(SmallFamily f, Rng& rng) {
  switch (f) {
    case SmallFamily::kGnp:
      return gen::gnp(40, 0.1, rng);
    case SmallFamily::kTree:
      return gen::random_tree(48, rng);
    case SmallFamily::kGrid:
      return gen::grid(6, 8);
    case SmallFamily::kRegular:
      return gen::random_regular(48, 4, rng);
    case SmallFamily::kCycle:
      return gen::cycle(45);
    case SmallFamily::kStar:
      return gen::star(30);
  }
  return gen::path(8);
}

using MaxIsConformanceParam = std::tuple<SmallFamily, WeightRegime>;

class MaxIsConformance
    : public ::testing::TestWithParam<MaxIsConformanceParam> {};

TEST_P(MaxIsConformance, LayeredAndGreedyWithinDeltaOfExact) {
  const auto [family, regime] = GetParam();
  Rng rng(hash_combine(static_cast<int>(family) * 41,
                       static_cast<int>(regime)));
  const Graph g = make_small_family(family, rng);
  ASSERT_LE(g.num_nodes(), 64u);
  const auto w = make_weights(regime, g.num_nodes(), rng);
  const Weight opt = set_weight(w, exact_maxis(g, w).independent_set);
  const Weight delta = std::max<std::uint32_t>(g.max_degree(), 1);

  // Algorithm 2 (Thm 2.3): Δ-approximation, any seed.
  const auto layered = run_layered_maxis(g, w, 7);
  ASSERT_TRUE(is_independent_set(g, layered.independent_set));
  const Weight w_layered = set_weight(w, layered.independent_set);
  EXPECT_GE(w_layered * delta, opt)
      << "layered: " << w_layered << " * " << delta << " < " << opt;

  // The sequential weight-greedy baseline carries the same Δ bound.
  const auto greedy = greedy_maxis(g, w);
  ASSERT_TRUE(is_independent_set(g, greedy.independent_set));
  const Weight w_greedy = set_weight(w, greedy.independent_set);
  EXPECT_GE(w_greedy * delta, opt)
      << "greedy: " << w_greedy << " * " << delta << " < " << opt;

  // Neither heuristic beats the optimum (sanity on exact_maxis itself).
  EXPECT_LE(w_layered, opt);
  EXPECT_LE(w_greedy, opt);
}

INSTANTIATE_TEST_SUITE_P(
    Cross, MaxIsConformance,
    ::testing::Combine(
        ::testing::Values(SmallFamily::kGnp, SmallFamily::kTree,
                          SmallFamily::kGrid, SmallFamily::kRegular,
                          SmallFamily::kCycle, SmallFamily::kStar),
        ::testing::Values(WeightRegime::kUnit, WeightRegime::kUniform,
                          WeightRegime::kLogUniform,
                          WeightRegime::kExponential)));

}  // namespace
}  // namespace distapx
