// Theorem 2.10 (deterministic half): Algorithm 3 as an aggregation
// program, and the deterministic 2-approximate MWM on the line graph.
#include <gtest/gtest.h>

#include "coloring/coloring.hpp"
#include "graph/algos.hpp"
#include "graph/generators.hpp"
#include "matching/exact_mwm.hpp"
#include "matching/lr_matching_det.hpp"
#include "maxis/coloring_maxis.hpp"
#include "maxis/exact.hpp"
#include "test_helpers.hpp"

namespace distapx {
namespace {

NodeWeights node_weights_for(const Graph& g, std::uint64_t seed,
                             Weight max_w) {
  Rng rng(hash_combine(seed, 0x44));
  return gen::uniform_node_weights(g.num_nodes(), max_w, rng);
}

EdgeWeights edge_weights_for(const Graph& g, std::uint64_t seed,
                             Weight max_w) {
  Rng rng(hash_combine(seed, 0x55));
  return gen::uniform_edge_weights(g.num_edges(), max_w, rng);
}

class Alg3AggSeeds : public ::testing::TestWithParam<int> {};

TEST_P(Alg3AggSeeds, DeltaApproximationOnNodes) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  for (const auto& fc : test::small_families(seed)) {
    if (fc.graph.num_nodes() > 20) continue;
    const auto w = node_weights_for(fc.graph, seed, 25);
    const auto res =
        run_coloring_maxis_agg(fc.graph, w, greedy_coloring(fc.graph));
    EXPECT_TRUE(is_independent_set(fc.graph, res.independent_set))
        << fc.name;
    const Weight opt = test::brute_force_maxis_weight(fc.graph, w);
    const Weight got = set_weight(w, res.independent_set);
    const Weight delta = std::max<std::uint32_t>(fc.graph.max_degree(), 1);
    EXPECT_GE(got * delta, opt) << fc.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Alg3AggSeeds, ::testing::Range(1, 5));

TEST(Alg3Agg, AgreesWithMessagePassingVariantGuarantees) {
  // Both implementations of Algorithm 3 on the same coloring are
  // deterministic — and in fact make identical local-ratio choices, since
  // the selection is by color, not randomness.
  Rng rng(3);
  const Graph g = gen::gnp(60, 0.1, rng);
  const auto w = node_weights_for(g, 3, 50);
  const auto colors = greedy_coloring(g);
  const auto agg = run_coloring_maxis_agg(g, w, colors);
  const auto msg = run_coloring_maxis_with(g, w, colors);
  EXPECT_EQ(agg.independent_set, msg.independent_set);
}

TEST(Alg3Agg, SweepRoundsScaleWithColors) {
  // One super-round per color sweep: rounds bounded by ~#colors plus the
  // candidate unwinding.
  Rng rng(4);
  const Graph g = gen::random_regular(256, 6, rng);
  const auto w = node_weights_for(g, 4, 1000);
  const auto colors = greedy_coloring(g);
  Color num_colors = 0;
  for (Color c : colors) num_colors = std::max(num_colors, c + 1);
  const auto res = run_coloring_maxis_agg(g, w, colors);
  EXPECT_LE(res.metrics.rounds, 4u * num_colors + 8u);
}

class DetLrSeeds : public ::testing::TestWithParam<int> {};

TEST_P(DetLrSeeds, TwoApproxMwmSmall) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  for (const auto& fc : test::small_families(seed)) {
    if (fc.graph.num_nodes() > 20 || fc.graph.num_edges() == 0) continue;
    const auto w = edge_weights_for(fc.graph, seed, 25);
    const auto res = run_lr_matching_deterministic(fc.graph, w);
    EXPECT_TRUE(is_matching(fc.graph, res.matching)) << fc.name;
    const Weight opt =
        matching_weight(w, exact_mwm_small(fc.graph, w).matching);
    EXPECT_GE(matching_weight(w, res.matching) * 2, opt) << fc.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DetLrSeeds, ::testing::Range(1, 4));

TEST(DetLr, FullyDeterministic) {
  Rng rng(5);
  const Graph g = gen::gnp(40, 0.12, rng);
  const auto w = edge_weights_for(g, 5, 64);
  const auto a = run_lr_matching_deterministic(g, w);
  const auto b = run_lr_matching_deterministic(g, w);
  EXPECT_EQ(a.matching, b.matching);
  EXPECT_EQ(a.matching_metrics.rounds, b.matching_metrics.rounds);
}

TEST(DetLr, BipartiteAtScale) {
  Rng rng(6);
  const Graph g = gen::bipartite_gnp(30, 30, 0.1, rng);
  const auto w = edge_weights_for(g, 6, 100);
  const auto res = run_lr_matching_deterministic(g, w);
  EXPECT_TRUE(is_matching(g, res.matching));
  const Weight opt = matching_weight(w, exact_mwm_bipartite(g, w).matching);
  EXPECT_GE(matching_weight(w, res.matching) * 2, opt);
  // Edge coloring black box must be proper on L(G): <= Δ_L + 1 colors.
  std::uint32_t line_delta = 0;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto [u, v] = g.endpoints(e);
    line_delta = std::max(line_delta, g.degree(u) + g.degree(v) - 2);
  }
  EXPECT_LE(res.num_colors, line_delta + 1);
}

TEST(DetLr, CongestionBoundedOnStar) {
  const Graph star = gen::star(100);
  EdgeWeights w(star.num_edges(), 1);
  w[7] = 500;
  const auto res = run_lr_matching_deterministic(star, w);
  ASSERT_EQ(res.matching.size(), 1u);
  EXPECT_GE(matching_weight(w, res.matching) * 2, 500);
  EXPECT_LE(res.matching_metrics.max_edge_bits,
            res.matching_metrics.bandwidth_cap);
}

TEST(DetLr, EmptyGraph) {
  const Graph empty = GraphBuilder(3).build();
  const auto res = run_lr_matching_deterministic(empty, {});
  EXPECT_TRUE(res.matching.empty());
}

}  // namespace
}  // namespace distapx
