#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/algos.hpp"
#include "graph/bipartite.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/hypergraph.hpp"
#include "graph/line_graph.hpp"
#include "support/assert.hpp"
#include "test_helpers.hpp"

namespace distapx {
namespace {

TEST(GraphBuilder, RejectsSelfLoop) {
  GraphBuilder b(3);
  EXPECT_THROW(b.add_edge(1, 1), EnsureError);
}

TEST(GraphBuilder, RejectsOutOfRange) {
  GraphBuilder b(3);
  EXPECT_THROW(b.add_edge(0, 3), EnsureError);
}

TEST(GraphBuilder, RejectsParallelEdgesAtBuild) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  b.add_edge(1, 0);
  EXPECT_THROW(b.build(), EnsureError);
}

TEST(GraphBuilder, AddEdgeIfAbsentDeduplicates) {
  GraphBuilder b(3);
  const EdgeId e1 = b.add_edge_if_absent(0, 1);
  const EdgeId e2 = b.add_edge_if_absent(1, 0);
  EXPECT_EQ(e1, e2);
  EXPECT_EQ(b.num_edges(), 1u);
}

TEST(Graph, CsrStructure) {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(0, 2);
  b.add_edge(2, 3);
  const Graph g = b.build();
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(3), 1u);
  EXPECT_EQ(g.max_degree(), 2u);
  // Adjacency sorted by neighbor id.
  const auto nbrs = g.neighbors(0);
  EXPECT_EQ(nbrs[0].to, 1u);
  EXPECT_EQ(nbrs[1].to, 2u);
  EXPECT_EQ(g.find_edge(2, 3), g.find_edge(3, 2));
  EXPECT_EQ(g.find_edge(1, 3), kInvalidEdge);
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_EQ(g.other_endpoint(g.find_edge(0, 2), 0), 2u);
}

TEST(Generators, PathCycleStar) {
  const Graph p = gen::path(5);
  EXPECT_EQ(p.num_edges(), 4u);
  EXPECT_EQ(p.max_degree(), 2u);
  const Graph c = gen::cycle(5);
  EXPECT_EQ(c.num_edges(), 5u);
  for (NodeId v = 0; v < 5; ++v) EXPECT_EQ(c.degree(v), 2u);
  const Graph s = gen::star(6);
  EXPECT_EQ(s.num_edges(), 5u);
  EXPECT_EQ(s.degree(0), 5u);
  EXPECT_THROW(gen::cycle(2), EnsureError);
}

TEST(Generators, CompleteAndBipartite) {
  const Graph k = gen::complete(6);
  EXPECT_EQ(k.num_edges(), 15u);
  const Graph kb = gen::complete_bipartite(3, 4);
  EXPECT_EQ(kb.num_edges(), 12u);
  EXPECT_TRUE(try_bipartition(kb).has_value());
}

TEST(Generators, GridAndHypercube) {
  const Graph g = gen::grid(3, 4);
  EXPECT_EQ(g.num_nodes(), 12u);
  EXPECT_EQ(g.num_edges(), 3u * 3 + 2u * 4);
  const Graph h = gen::hypercube(4);
  EXPECT_EQ(h.num_nodes(), 16u);
  EXPECT_EQ(h.num_edges(), 32u);
  for (NodeId v = 0; v < 16; ++v) EXPECT_EQ(h.degree(v), 4u);
}

TEST(Generators, GnpEdgeCountMatchesExpectation) {
  Rng rng(42);
  const Graph g = gen::gnp(400, 0.05, rng);
  const double expected = 0.05 * 400 * 399 / 2;
  EXPECT_GT(g.num_edges(), expected * 0.8);
  EXPECT_LT(g.num_edges(), expected * 1.2);
}

TEST(Generators, GnpExtremes) {
  Rng rng(1);
  EXPECT_EQ(gen::gnp(10, 0.0, rng).num_edges(), 0u);
  EXPECT_EQ(gen::gnp(10, 1.0, rng).num_edges(), 45u);
}

TEST(Generators, RandomRegularDegrees) {
  Rng rng(7);
  const Graph g = gen::random_regular(64, 4, rng);
  EXPECT_LE(g.max_degree(), 4u);
  std::size_t full = 0;
  for (NodeId v = 0; v < 64; ++v) full += g.degree(v) == 4 ? 1 : 0;
  EXPECT_GE(full, 60u);  // pairing model nearly always succeeds fully
  EXPECT_THROW(gen::random_regular(5, 3, rng), EnsureError);
}

TEST(Generators, RandomBoundedDegreeRespectsCap) {
  Rng rng(8);
  const Graph g = gen::random_bounded_degree(100, 5, rng);
  EXPECT_LE(g.max_degree(), 5u);
  EXPECT_GT(g.num_edges(), 50u);
}

TEST(Generators, RandomTreeIsTree) {
  Rng rng(9);
  for (NodeId n : {1u, 2u, 3u, 10u, 100u}) {
    const Graph t = gen::random_tree(n, rng);
    EXPECT_EQ(t.num_edges(), n - 1);
    const auto comp = connected_components(t);
    EXPECT_TRUE(std::all_of(comp.begin(), comp.end(),
                            [](std::uint32_t c) { return c == 0; }));
  }
}

TEST(Generators, PowerLawProducesSkew) {
  Rng rng(10);
  const Graph g = gen::power_law(200, 2.5, 4.0, rng);
  EXPECT_GT(g.num_edges(), 100u);
  EXPECT_GT(g.max_degree(), 8u);  // head of the distribution
}

TEST(Generators, Caterpillar) {
  const Graph g = gen::caterpillar(3, 2);
  EXPECT_EQ(g.num_nodes(), 9u);
  EXPECT_EQ(g.num_edges(), 2u + 6u);
}

TEST(Generators, Weights) {
  Rng rng(11);
  const auto w = gen::uniform_node_weights(100, 50, rng);
  EXPECT_TRUE(std::all_of(w.begin(), w.end(),
                          [](Weight x) { return x >= 1 && x <= 50; }));
  const auto we = gen::exponential_node_weights(100, 1 << 16, rng);
  EXPECT_TRUE(std::all_of(we.begin(), we.end(), [](Weight x) {
    return x >= 1 && x <= (1 << 16);
  }));
  EXPECT_EQ(gen::unit_node_weights(5), NodeWeights(5, 1));
}

TEST(LineGraph, PathBecomesPath) {
  const Graph p = gen::path(5);
  const LineGraph lg(p);
  EXPECT_EQ(lg.graph().num_nodes(), 4u);
  EXPECT_EQ(lg.graph().num_edges(), 3u);
  EXPECT_EQ(lg.graph().max_degree(), 2u);
}

TEST(LineGraph, StarBecomesComplete) {
  const Graph s = gen::star(5);
  const LineGraph lg(s);
  EXPECT_EQ(lg.graph().num_nodes(), 4u);
  EXPECT_EQ(lg.graph().num_edges(), 6u);  // K4
}

TEST(LineGraph, CycleBecomesCycle) {
  const Graph c = gen::cycle(6);
  const LineGraph lg(c);
  EXPECT_EQ(lg.graph().num_nodes(), 6u);
  EXPECT_EQ(lg.graph().num_edges(), 6u);
  for (NodeId v = 0; v < 6; ++v) EXPECT_EQ(lg.graph().degree(v), 2u);
}

TEST(LineGraph, DegreeFormula) {
  Rng rng(12);
  const Graph g = gen::gnp(30, 0.2, rng);
  const LineGraph lg(g);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto [u, v] = g.endpoints(e);
    EXPECT_EQ(lg.graph().degree(lg.line_node(e)),
              g.degree(u) + g.degree(v) - 2);
  }
}

TEST(LineGraph, ToMatchingMapsBack) {
  const Graph p = gen::path(5);
  const LineGraph lg(p);
  const auto matching = lg.to_matching({0, 2});
  EXPECT_EQ(matching, (std::vector<EdgeId>{0, 2}));
  EXPECT_TRUE(is_matching(p, matching));
}

TEST(Bipartite, EvenCycleYes) {
  EXPECT_TRUE(try_bipartition(gen::cycle(8)).has_value());
}

TEST(Bipartite, OddCycleNo) {
  EXPECT_FALSE(try_bipartition(gen::cycle(9)).has_value());
}

TEST(Bipartite, PartitionIsProper) {
  Rng rng(13);
  const Graph g = gen::bipartite_gnp(20, 25, 0.2, rng);
  const auto parts = try_bipartition(g);
  ASSERT_TRUE(parts.has_value());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto [u, v] = g.endpoints(e);
    EXPECT_NE(parts->side[u], parts->side[v]);
  }
}

TEST(Bipartite, BichromaticMask) {
  Rng rng(14);
  const Graph g = gen::complete(6);
  const Bipartition parts = random_bipartition(6, rng);
  const auto mask = bichromatic_edge_mask(g, parts);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto [u, v] = g.endpoints(e);
    EXPECT_EQ(mask[e], parts.side[u] != parts.side[v]);
  }
}

TEST(Hypergraph, BasicsAndIntersection) {
  Hypergraph h(6, {{0, 1, 2}, {2, 3}, {4, 5}});
  EXPECT_EQ(h.num_vertices(), 6u);
  EXPECT_EQ(h.num_hyperedges(), 3u);
  EXPECT_EQ(h.rank(), 3u);
  EXPECT_TRUE(h.intersects(0, 1));
  EXPECT_FALSE(h.intersects(0, 2));
  EXPECT_TRUE(h.is_matching({0, 2}));
  EXPECT_FALSE(h.is_matching({0, 1}));
  EXPECT_EQ(h.incident(2).size(), 2u);
}

TEST(Hypergraph, RejectsRepeatedVertex) {
  EXPECT_THROW(Hypergraph(3, {{0, 0, 1}}), EnsureError);
}

TEST(Algos, BfsDistances) {
  const Graph p = gen::path(6);
  const auto d = bfs_distances(p, 0);
  for (NodeId v = 0; v < 6; ++v) EXPECT_EQ(d[v], v);
  GraphBuilder b(3);
  b.add_edge(0, 1);
  const auto d2 = bfs_distances(b.build(), 0);
  EXPECT_EQ(d2[2], kUnreachable);
}

TEST(Algos, ConnectedComponents) {
  GraphBuilder b(5);
  b.add_edge(0, 1);
  b.add_edge(3, 4);
  const auto comp = connected_components(b.build());
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[3], comp[4]);
  EXPECT_NE(comp[0], comp[2]);
  EXPECT_NE(comp[2], comp[3]);
}

TEST(Algos, DegeneracyOfStructuredGraphs) {
  std::uint32_t d = 0;
  degeneracy_order(gen::path(10), &d);
  EXPECT_EQ(d, 1u);
  degeneracy_order(gen::cycle(10), &d);
  EXPECT_EQ(d, 2u);
  degeneracy_order(gen::complete(6), &d);
  EXPECT_EQ(d, 5u);
  const auto order = degeneracy_order(gen::star(8), &d);
  EXPECT_EQ(d, 1u);
  EXPECT_EQ(order.size(), 8u);
}

TEST(Algos, IndependentSetChecks) {
  const Graph p = gen::path(5);
  EXPECT_TRUE(is_independent_set(p, {0, 2, 4}));
  EXPECT_FALSE(is_independent_set(p, {0, 1}));
  EXPECT_FALSE(is_independent_set(p, {0, 0}));
  EXPECT_TRUE(is_maximal_independent_set(p, {0, 2, 4}));
  EXPECT_TRUE(is_maximal_independent_set(p, {0, 3}));
  EXPECT_FALSE(is_maximal_independent_set(p, {1}));  // node 4 uncovered
}

TEST(Algos, MatchingChecks) {
  const Graph p = gen::path(5);  // edges 0:(0,1) 1:(1,2) 2:(2,3) 3:(3,4)
  EXPECT_TRUE(is_matching(p, {0, 2}));
  EXPECT_FALSE(is_matching(p, {0, 1}));
  EXPECT_FALSE(is_matching(p, {0, 0}));
  EXPECT_TRUE(is_maximal_matching(p, {0, 2}));
  EXPECT_FALSE(is_maximal_matching(p, {0}));
  EXPECT_TRUE(is_maximal_matching(p, {1, 3}));
}

TEST(Algos, WeightHelpers) {
  NodeWeights w{1, 2, 3};
  EXPECT_EQ(set_weight(w, {0, 2}), 4);
  EdgeWeights ew{5, 7};
  EXPECT_EQ(matching_weight(ew, {1}), 7);
}

TEST(Algos, InducedSubgraph) {
  const Graph p = gen::path(5);
  std::vector<bool> keep{true, true, false, true, true};
  const auto sub = induced_subgraph(p, keep);
  EXPECT_EQ(sub.graph.num_nodes(), 4u);
  EXPECT_EQ(sub.graph.num_edges(), 2u);  // (0,1) and (3,4)
  EXPECT_EQ(sub.original_id[sub.new_id[3]], 3u);
  EXPECT_EQ(sub.new_id[2], kInvalidNode);
}

TEST(Algos, EdgeSubgraph) {
  const Graph p = gen::path(4);
  std::vector<bool> mask{true, false, true};
  const auto sub = edge_subgraph(p, mask);
  EXPECT_EQ(sub.graph.num_nodes(), 4u);
  EXPECT_EQ(sub.graph.num_edges(), 2u);
  EXPECT_EQ(sub.original_edge, (std::vector<EdgeId>{0, 2}));
}

TEST(Families, HelpersProduceValidGraphs) {
  for (const auto& fc : test::small_families(3)) {
    EXPECT_GE(fc.graph.num_nodes(), 1u) << fc.name;
  }
  for (const auto& fc : test::medium_families(3)) {
    EXPECT_GE(fc.graph.num_nodes(), 100u) << fc.name;
  }
}

}  // namespace
}  // namespace distapx
