// The wire layer of the socket serving tier (net/frame.hpp,
// net/protocol.hpp, net/socket.hpp endpoint parsing).
//
// Contract under test: encode_frame/FrameReader round-trip every frame
// type through arbitrary stream fragmentation, and every malformed input
// — garbage magic, wrong version, unknown type, reserved bits, oversized
// declared length, truncation at any byte — is *classified*, sticky, and
// detected from the shortest prefix that proves it. The payload codecs
// (HELLO, RESULT) must reject short/inconsistent sections rather than
// misparse them.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "net/frame.hpp"
#include "net/protocol.hpp"
#include "net/socket.hpp"

namespace distapx {
namespace {

using net::Frame;
using net::FrameReader;
using net::FrameStatus;
using net::FrameType;

std::string wire(FrameType type, const std::string& payload) {
  return net::encode_frame(type, payload);
}

TEST(FrameCodec, HeaderLayoutIsExactlyAsDocumented) {
  const std::string bytes = wire(FrameType::kSubmit, "abc");
  ASSERT_EQ(bytes.size(), net::kFrameHeaderSize + 3);
  EXPECT_EQ(bytes.substr(0, 4), "DAPX");
  EXPECT_EQ(static_cast<unsigned char>(bytes[4]), net::kWireVersion);
  EXPECT_EQ(static_cast<unsigned char>(bytes[5]),
            static_cast<unsigned char>(FrameType::kSubmit));
  EXPECT_EQ(bytes[6], '\0');
  EXPECT_EQ(bytes[7], '\0');
  // Payload length, unsigned little-endian.
  EXPECT_EQ(bytes[8], 3);
  EXPECT_EQ(bytes[9], 0);
  EXPECT_EQ(bytes[10], 0);
  EXPECT_EQ(bytes[11], 0);
  EXPECT_EQ(bytes.substr(12), "abc");
}

TEST(FrameCodec, RoundTripsEveryType) {
  const std::vector<FrameType> types = {
      FrameType::kHello,    FrameType::kSubmit, FrameType::kResult,
      FrameType::kError,    FrameType::kPing,   FrameType::kPong,
      FrameType::kStatsReq, FrameType::kStats,  FrameType::kShutdown,
      FrameType::kSubmitTrace, FrameType::kResultTrace};
  FrameReader reader(1 << 20);
  for (const FrameType t : types) {
    reader.feed(wire(t, "payload-of-" + std::to_string(static_cast<int>(t))));
  }
  for (const FrameType t : types) {
    Frame f;
    ASSERT_EQ(reader.next(f), FrameStatus::kFrame);
    EXPECT_EQ(f.type, t);
    EXPECT_EQ(f.payload, "payload-of-" + std::to_string(static_cast<int>(t)));
  }
  Frame f;
  EXPECT_EQ(reader.next(f), FrameStatus::kNeedMore);
  EXPECT_EQ(reader.buffered(), 0u);
}

TEST(FrameCodec, ByteAtATimeFeedingProducesTheSameFrames) {
  const std::string bytes =
      wire(FrameType::kSubmit, "gen=path:10 algo=luby\n") +
      wire(FrameType::kPing, "");
  FrameReader reader(1 << 20);
  std::vector<Frame> frames;
  for (const char c : bytes) {
    reader.feed(&c, 1);
    Frame f;
    while (reader.next(f) == FrameStatus::kFrame) frames.push_back(f);
  }
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].type, FrameType::kSubmit);
  EXPECT_EQ(frames[0].payload, "gen=path:10 algo=luby\n");
  EXPECT_EQ(frames[1].type, FrameType::kPing);
  EXPECT_TRUE(frames[1].payload.empty());
}

TEST(FrameCodec, EmptyPayloadFrame) {
  FrameReader reader(0);  // even a zero cap admits empty payloads
  reader.feed(wire(FrameType::kPong, ""));
  Frame f;
  ASSERT_EQ(reader.next(f), FrameStatus::kFrame);
  EXPECT_EQ(f.type, FrameType::kPong);
}

// ---- negative paths: each malformation has exactly one classification ----

TEST(FrameCodec, GarbageMagicIsRejectedFromTheFirstDivergentByte) {
  FrameReader reader(1 << 20);
  reader.feed("GET ", 4);  // an HTTP client knocking on the wrong door
  Frame f;
  EXPECT_EQ(reader.next(f), FrameStatus::kBadMagic);
}

TEST(FrameCodec, ShortGarbagePrefixAlreadyClassifies) {
  // 2 bytes that cannot begin "DAPX": rejected without waiting for a
  // full header (the slow-loris clock should not even start).
  FrameReader reader(1 << 20);
  reader.feed("XX", 2);
  Frame f;
  EXPECT_EQ(reader.next(f), FrameStatus::kBadMagic);
}

TEST(FrameCodec, WrongVersionByte) {
  std::string bytes = wire(FrameType::kPing, "");
  bytes[4] = 99;
  FrameReader reader(1 << 20);
  reader.feed(bytes);
  Frame f;
  EXPECT_EQ(reader.next(f), FrameStatus::kBadVersion);
}

TEST(FrameCodec, UnknownTypeByte) {
  std::string bytes = wire(FrameType::kPing, "");
  bytes[5] = 0x7f;
  FrameReader reader(1 << 20);
  reader.feed(bytes);
  Frame f;
  EXPECT_EQ(reader.next(f), FrameStatus::kBadType);
}

TEST(FrameCodec, ReservedBitsMustBeZero) {
  std::string bytes = wire(FrameType::kPing, "");
  bytes[6] = 1;
  FrameReader reader(1 << 20);
  reader.feed(bytes);
  Frame f;
  EXPECT_EQ(reader.next(f), FrameStatus::kBadReserved);
}

TEST(FrameCodec, OversizedDeclaredLengthIsRejectedFromTheHeaderAlone) {
  // Declares 0xffffffff bytes; the reader must reject on the 12-byte
  // header without waiting for (or buffering) any payload.
  std::string bytes = wire(FrameType::kSubmit, "").substr(0, 8);
  bytes += "\xff\xff\xff\xff";
  FrameReader reader(1 << 20);
  reader.feed(bytes);
  Frame f;
  EXPECT_EQ(reader.next(f), FrameStatus::kOversized);
}

TEST(FrameCodec, OneByteOverTheCapIsOversizedAtTheCapIsNot) {
  const std::string payload(16, 'x');
  {
    FrameReader reader(16);
    reader.feed(wire(FrameType::kSubmit, payload));
    Frame f;
    EXPECT_EQ(reader.next(f), FrameStatus::kFrame);
  }
  {
    FrameReader reader(15);
    reader.feed(wire(FrameType::kSubmit, payload));
    Frame f;
    EXPECT_EQ(reader.next(f), FrameStatus::kOversized);
  }
}

TEST(FrameCodec, TruncatedFrameStaysNeedMoreAndReportsMidFrame) {
  const std::string bytes = wire(FrameType::kSubmit, "0123456789");
  for (std::size_t cut = 1; cut < bytes.size(); ++cut) {
    FrameReader reader(1 << 20);
    reader.feed(bytes.data(), cut);
    Frame f;
    ASSERT_EQ(reader.next(f), FrameStatus::kNeedMore) << "cut at " << cut;
    EXPECT_TRUE(reader.mid_frame()) << "cut at " << cut;
  }
}

TEST(FrameCodec, ErrorsAreSticky) {
  FrameReader reader(1 << 20);
  reader.feed("JUNK", 4);
  Frame f;
  EXPECT_EQ(reader.next(f), FrameStatus::kBadMagic);
  // Even feeding a perfectly valid frame afterwards cannot resynchronize.
  reader.feed(wire(FrameType::kPing, ""));
  EXPECT_EQ(reader.next(f), FrameStatus::kBadMagic);
}

TEST(FrameCodec, StatusNamesAreStable) {
  EXPECT_STREQ(net::frame_status_name(FrameStatus::kBadMagic), "bad-magic");
  EXPECT_STREQ(net::frame_status_name(FrameStatus::kOversized), "oversized");
  EXPECT_STREQ(net::frame_status_name(FrameStatus::kBadReserved),
               "bad-reserved");
}

// ---- payload codecs ------------------------------------------------------

TEST(ProtocolCodec, HelloRoundTrip) {
  const std::string payload = net::encode_hello();
  std::uint32_t version = 0;
  std::string software;
  ASSERT_TRUE(net::decode_hello(payload, version, software));
  EXPECT_EQ(version, net::kProtocolVersion);
  EXPECT_EQ(software, net::hello_software_id());
}

TEST(ProtocolCodec, HelloTooShortIsRejected) {
  std::uint32_t version = 0;
  std::string software;
  EXPECT_FALSE(net::decode_hello("abc", version, software));
}

TEST(ProtocolCodec, ResultRoundTrip) {
  net::ResultPayload in;
  in.summary_csv = "name,runs\njob0,4\n";
  in.runs_csv = "job,seed\njob0,1\n";
  in.report_txt = "runs 4\n";
  net::ResultPayload out;
  ASSERT_TRUE(net::decode_result(net::encode_result(in), out));
  EXPECT_EQ(in, out);
}

TEST(ProtocolCodec, ResultWithEmptySectionsRoundTrips) {
  net::ResultPayload in;  // all sections empty
  net::ResultPayload out;
  ASSERT_TRUE(net::decode_result(net::encode_result(in), out));
  EXPECT_EQ(in, out);
}

TEST(ProtocolCodec, ResultRejectsTruncationAtEveryByte) {
  net::ResultPayload in;
  in.summary_csv = "summary";
  in.runs_csv = "runs";
  in.report_txt = "report";
  const std::string bytes = net::encode_result(in);
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    net::ResultPayload out;
    EXPECT_FALSE(net::decode_result(bytes.substr(0, cut), out))
        << "cut at " << cut;
  }
}

TEST(ProtocolCodec, ResultRejectsTrailingBytes) {
  net::ResultPayload in;
  in.runs_csv = "rows";
  net::ResultPayload out;
  EXPECT_FALSE(net::decode_result(net::encode_result(in) + "x", out));
}

TEST(ProtocolCodec, ResultTraceRoundTrip) {
  net::ResultPayload in;
  in.summary_csv = "name,runs\njob0,4\n";
  in.runs_csv = "job,seed\njob0,1\n";
  in.report_txt = "runs 4\n";
  const std::string tree = "trace 42 endpoint=submit\n  recv 0.1ms\n";
  const std::string bytes = net::encode_result_trace(in, tree);
  EXPECT_EQ(bytes.size(), net::result_trace_wire_size(in, tree));
  net::ResultPayload out;
  std::string tree_out;
  ASSERT_TRUE(net::decode_result_trace(bytes, out, tree_out));
  EXPECT_EQ(in, out);
  EXPECT_EQ(tree, tree_out);
  // The trace section is a strict extension: RESULT's own codec must not
  // accept the four-section payload, nor vice versa.
  EXPECT_FALSE(net::decode_result(bytes, out));
  EXPECT_FALSE(net::decode_result_trace(net::encode_result(in), out,
                                        tree_out));
}

TEST(ProtocolCodec, ResultTraceRejectsTruncationAtEveryByte) {
  net::ResultPayload in;
  in.summary_csv = "s";
  in.report_txt = "r";
  const std::string bytes = net::encode_result_trace(in, "tree");
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    net::ResultPayload out;
    std::string tree;
    EXPECT_FALSE(net::decode_result_trace(bytes.substr(0, cut), out, tree))
        << "cut at " << cut;
  }
}

// ---- endpoint parsing ----------------------------------------------------

TEST(EndpointParse, TcpHostPortForms) {
  const net::Endpoint a = net::parse_endpoint("127.0.0.1:8080");
  EXPECT_EQ(a.kind, net::Endpoint::Kind::kTcp);
  EXPECT_EQ(a.host, "127.0.0.1");
  EXPECT_EQ(a.port, 8080);
  const net::Endpoint b = net::parse_endpoint("localhost:0");
  EXPECT_EQ(b.kind, net::Endpoint::Kind::kTcp);
  EXPECT_EQ(b.port, 0);
  EXPECT_EQ(b.to_string(), "localhost:0");
}

TEST(EndpointParse, EverythingElseIsAUnixPath) {
  for (const std::string path :
       {"/tmp/dx.sock", "./relative.sock", "no-colon", "weird:path",
        "trailing:", ":leading"}) {
    const net::Endpoint ep = net::parse_endpoint(path);
    EXPECT_EQ(ep.kind, net::Endpoint::Kind::kUnix) << path;
    EXPECT_EQ(ep.path, path);
    EXPECT_EQ(ep.to_string(), path);
  }
}

TEST(EndpointParse, EmptyAndOverflowPortAreErrors) {
  EXPECT_THROW(net::parse_endpoint(""), net::NetError);
  // Port 99999 overflows uint16: not a valid TCP endpoint, and the
  // fallback Unix interpretation is taken instead (it is a legal file
  // name).
  EXPECT_EQ(net::parse_endpoint("127.0.0.1:99999").kind,
            net::Endpoint::Kind::kUnix);
}

}  // namespace
}  // namespace distapx
