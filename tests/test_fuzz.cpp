// Cross-algorithm fuzz sweep: random (family, weights, algorithm, seed)
// combinations, verifying every structural invariant on each. Complements
// the targeted suites with breadth — any EnsureError (model violation,
// CONGEST cap breach, broken invariant) fails the test.
#include <gtest/gtest.h>

#include "coloring/coloring.hpp"
#include "graph/algos.hpp"
#include "graph/generators.hpp"
#include "matching/lr_matching.hpp"
#include "matching/lr_matching_det.hpp"
#include "matching/mcm_congest.hpp"
#include "matching/nmm_2eps.hpp"
#include "matching/proposal.hpp"
#include "matching/weighted_2eps.hpp"
#include "maxis/coloring_maxis.hpp"
#include "maxis/layered_maxis.hpp"
#include "mis/ghaffari_nmis.hpp"
#include "mis/luby.hpp"
#include "test_helpers.hpp"

namespace distapx {
namespace {

Graph random_family(Rng& rng) {
  switch (rng.next_below(9)) {
    case 0:
      return gen::gnp(40 + rng.next_below(80), 0.06, rng);
    case 1:
      return gen::random_regular(64, 2 + 2 * rng.next_below(4), rng);
    case 2:
      return gen::random_tree(60 + rng.next_below(100), rng);
    case 3:
      return gen::grid(4 + rng.next_below(6), 4 + rng.next_below(6));
    case 4:
      return gen::bipartite_gnp(30, 30, 0.08, rng);
    case 5:
      return gen::power_law(80, 2.5, 4.0, rng);
    case 6:
      return gen::caterpillar(10 + rng.next_below(20), 1 + rng.next_below(3));
    case 7:
      return gen::barbell(4 + rng.next_below(4), rng.next_below(5));
    default:
      return gen::star(20 + rng.next_below(60));
  }
}

class Fuzz : public ::testing::TestWithParam<int> {};

TEST_P(Fuzz, AllAlgorithmsAllInvariants) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  Rng rng(hash_combine(seed, 0xf0));
  const Graph g = random_family(rng);
  const auto nw = gen::log_uniform_node_weights(
      g.num_nodes(), 1 + rng.next_below(1 << 14), rng);
  const auto ew = gen::uniform_edge_weights(
      g.num_edges(), 1 + rng.next_below(1 << 10), rng);

  // MIS.
  const auto mis = run_luby_mis(g, seed);
  ASSERT_TRUE(is_maximal_independent_set(g, mis.independent_set));
  const auto nmis = run_nmis(g, seed);
  ASSERT_TRUE(is_independent_set(g, nmis.independent_set));

  // MaxIS (both algorithms).
  const auto alg2 = run_layered_maxis(g, nw, seed);
  ASSERT_TRUE(is_independent_set(g, alg2.independent_set));
  ASSERT_LE(alg2.metrics.max_edge_bits, alg2.metrics.bandwidth_cap);
  const auto alg3 = run_coloring_maxis_with(g, nw, greedy_coloring(g));
  ASSERT_TRUE(is_independent_set(g, alg3.independent_set));

  if (g.num_edges() == 0) return;

  // Matchings.
  const auto lr = run_lr_matching(g, ew, seed);
  ASSERT_TRUE(is_matching(g, lr.matching));
  ASSERT_LE(lr.metrics.max_edge_bits, lr.metrics.bandwidth_cap);

  const auto det = run_lr_matching_deterministic(g, ew);
  ASSERT_TRUE(is_matching(g, det.matching));

  const auto nmm = run_nmm_2eps_matching(g, seed);
  ASSERT_TRUE(is_matching(g, nmm.matching));
  ASSERT_TRUE(is_maximal_matching(
      g, complete_matching_greedily(g, nmm.matching)));

  const auto w2 = run_weighted_2eps_matching(g, ew, seed);
  ASSERT_TRUE(is_matching(g, w2.matching));

  const auto prop = run_proposal_matching(g, seed);
  ASSERT_TRUE(is_matching(g, prop.matching));

  McmCongestParams mcp;
  mcp.epsilon = 0.5;  // keep the fuzz iteration cheap
  mcp.stages = 4;
  const auto mc = run_mcm_1eps_congest(g, seed, mcp);
  ASSERT_TRUE(is_matching(g, mc.matching));
}

INSTANTIATE_TEST_SUITE_P(Seeds, Fuzz, ::testing::Range(1, 21));

TEST(FuzzObserver, TraceMatchesMetrics) {
  Rng rng(3);
  const Graph g = gen::gnp(60, 0.08, rng);
  sim::Network net(g);
  sim::RunOptions opts;
  std::uint64_t traced_msgs = 0, traced_bits = 0;
  std::uint32_t last_round = 0;
  NodeId final_halted = 0;
  opts.observer = [&](const sim::RoundSample& s) {
    traced_msgs += s.messages;
    traced_bits += s.bits;
    last_round = s.round;
    final_halted = s.nodes_halted;
  };
  const auto res = net.run(make_luby_program(g), opts);
  EXPECT_EQ(traced_msgs, res.metrics.messages);
  EXPECT_EQ(traced_bits, res.metrics.total_bits);
  EXPECT_EQ(last_round, res.metrics.rounds);
  EXPECT_EQ(final_halted, g.num_nodes());
}

}  // namespace
}  // namespace distapx
