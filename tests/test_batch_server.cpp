// Batch-serving determinism and job-file coverage (service/).
//
// The contract under test: RunRow i of job j depends only on (spec_j,
// seed) — never on the pool's thread count, on scheduling order, or on
// what other jobs share the pool — and equals what sequential per-job
// sim::run_many execution produces.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "mis/luby.hpp"
#include "mis/mis.hpp"
#include "service/batch_server.hpp"
#include "service/job_spec.hpp"
#include "sim/run_many.hpp"
#include "support/table.hpp"

namespace distapx {
namespace {

/// Mixed workload: 4 graph families x 4 algorithms (2 IS, 2 matching).
const char* kMixedJobFile = R"(
# mixed batch workload
gen=gnp:120:0.05      algo=luby        seeds=1:6   name=gnp-luby
gen=regular:96:6      algo=maxis-alg2  seeds=3:4   maxw=512 name=reg-maxis
gen=grid:8:8          algo=mcm-2eps    seeds=1:4   eps=0.3  name=grid-mcm

gen=tree:150          algo=mwm-lr      seeds=2:3   maxw=32  name=tree-mwm
)";

std::vector<service::JobSpec> mixed_jobs() {
  std::istringstream is(kMixedJobFile);
  return service::parse_job_file(is);
}

service::BatchResult serve_mixed(unsigned threads) {
  service::BatchServer server({threads});
  server.submit_all(mixed_jobs());
  return server.serve();
}

void expect_same_rows(const service::BatchResult& a,
                      const service::BatchResult& b) {
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t j = 0; j < a.jobs.size(); ++j) {
    ASSERT_EQ(a.jobs[j].rows.size(), b.jobs[j].rows.size()) << "job " << j;
    for (std::size_t i = 0; i < a.jobs[j].rows.size(); ++i) {
      EXPECT_EQ(a.jobs[j].rows[i], b.jobs[j].rows[i])
          << a.jobs[j].name << " run " << i;
    }
  }
}

TEST(JobFile, ParsesTheMixedWorkload) {
  const auto jobs = mixed_jobs();
  ASSERT_EQ(jobs.size(), 4u);
  EXPECT_EQ(jobs[0].name, "gnp-luby");
  EXPECT_EQ(jobs[0].algorithm, "luby");
  EXPECT_EQ(jobs[0].gen_spec, "gnp:120:0.05");
  EXPECT_EQ(jobs[0].first_seed, 1u);
  EXPECT_EQ(jobs[0].num_seeds, 6u);
  EXPECT_EQ(jobs[1].max_w, 512);
  EXPECT_EQ(jobs[1].first_seed, 3u);
  EXPECT_DOUBLE_EQ(jobs[2].eps, 0.3);
  EXPECT_EQ(jobs[3].seed_at(2), 4u);
}

TEST(JobFile, KeyForms) {
  auto spec = service::parse_job_line(
      "gen=path:10 algo=luby seeds=12 policy=local rounds=500");
  EXPECT_EQ(spec.first_seed, 1u);
  EXPECT_EQ(spec.num_seeds, 12u);
  EXPECT_FALSE(spec.policy.bounded);
  EXPECT_EQ(spec.max_rounds, 500u);
  EXPECT_TRUE(spec.name.empty());  // parse_job_file assigns job<i> names

  spec = service::parse_job_line(
      "file=some.graph algo=mwm-lr policy=congest:16 gseed=9");
  EXPECT_EQ(spec.graph_file, "some.graph");
  EXPECT_TRUE(spec.policy.bounded);
  EXPECT_EQ(spec.policy.multiplier, 16u);
  EXPECT_EQ(spec.graph_seed, 9u);
}

TEST(JobFile, DefaultNamesArePositional) {
  std::istringstream is(
      "gen=path:10 algo=luby\n"
      "# comment\n"
      "gen=path:12 algo=luby name=why\n"
      "gen=path:14 algo=luby\n");
  const auto jobs = service::parse_job_file(is);
  ASSERT_EQ(jobs.size(), 3u);
  EXPECT_EQ(jobs[0].name, "job0");
  EXPECT_EQ(jobs[1].name, "why");
  EXPECT_EQ(jobs[2].name, "job2");
}

TEST(JobFile, MalformedLinesThrow) {
  const char* bad_lines[] = {
      "gen=path:10",                          // missing algo
      "algo=luby",                            // missing graph source
      "gen=path:10 file=x algo=luby",         // both sources
      "gen=path:10 algo=frobnicate",          // unknown algorithm
      "gen=torus:5:5 algo=luby",              // bad generator family
      "gen=path:ten algo=luby",               // bad generator parameter
      "gen=path:10 algo=luby seeds=0",        // zero runs
      "gen=path:10 algo=luby seeds=1:zz",     // bad seed count
      "gen=path:10 algo=luby policy=quantum", // bad policy
      "gen=path:10 algo=luby eps=-1",         // bad epsilon
      "gen=path:10 algo=luby eps=nan",        // non-finite epsilon
      "gen=path:10 algo=luby maxw=0",         // bad weight bound
      "gen=path:10 algo=luby frobs=3",        // unknown key
      "gen=path:10 algo=luby seeds",          // not key=value
  };
  for (const char* line : bad_lines) {
    EXPECT_THROW(service::parse_job_line(line), service::JobError) << line;
  }
}

TEST(JobFile, ErrorsCarryLineNumbers) {
  std::istringstream is("gen=path:10 algo=luby\n\ngen=path:10 algo=nope\n");
  try {
    service::parse_job_file(is);
    FAIL() << "expected JobError";
  } catch (const service::JobError& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
        << e.what();
  }
}

// ---- negative paths: the exact line number AND message ---------------------
//
// The daemon quarantines a malformed job file with this diagnostic and
// nothing else; operators fix spool files from the message alone, so the
// line number and the wording are contract, not decoration.

std::string job_file_error(const std::string& content) {
  std::istringstream is(content);
  try {
    service::parse_job_file(is);
  } catch (const service::JobError& e) {
    return e.what();
  }
  return "<no JobError thrown>";
}

TEST(JobFileNegativePaths, ExactLineNumberAndMessage) {
  // (file content, exact diagnostic) pairs. Comments and blank lines
  // deliberately offset the failing line to pin down the numbering.
  const struct {
    const char* content;
    const char* expected;
  } cases[] = {
      {"gen=path:10 algo=luby\nalgo=luby\n",
       "line 2: exactly one of gen= / file= is required"},
      {"\n# header comment\ngen=path:10\n",
       "line 3: missing required key algo="},
      {"gen=path:10 algo=luby seeds=0\n",
       "line 1: seeds=0 requests zero runs"},
      {"gen=path:10 algo=luby\ngen=path:10 algo=luby seeds=1:zz\n",
       "line 2: seeds=zz is not an integer in [0, 16777216]"},
      {"gen=path:10 algo=nope\n", "line 1: unknown algorithm \"nope\""},
      {"# comment\ngen=path:10 algo=luby policy\n",
       "line 2: token \"policy\" is not key=value"},
      {"gen=path:10 algo=luby eps=\n",
       "line 1: empty value for key \"eps\""},
      {"gen=path:10 algo=luby eps=-0.5\n", "line 1: eps must be positive"},
      {"gen=path:10 algo=luby maxw=0\n", "line 1: maxw must be positive"},
      {"gen=path:10 algo=luby frobs=3\n",
       "line 1: unknown key \"frobs\""},
      {"gen=path:10 algo=luby gseed=12x\n",
       "line 1: gseed=12x is not an integer in [0, 18446744073709551615]"},
      {"gen=path:10 algo=luby policy=congest:0\n",
       "line 1: policy=congest:0 has a zero multiplier"},
      {"gen=path:10 algo=luby policy=quantum\n",
       "line 1: policy=quantum (want congest[:MULT] or local)"},
      {"gen=path:10 file=x.graph algo=luby\n",
       "line 1: exactly one of gen= / file= is required"},
  };
  for (const auto& c : cases) {
    EXPECT_EQ(job_file_error(c.content), c.expected) << c.content;
  }
}

TEST(JobFileNegativePaths, BadSeedRanges) {
  // Seed-range values out of the documented [0, 2^24] count window.
  EXPECT_EQ(job_file_error("gen=path:10 algo=luby seeds=99999999\n"),
            "line 1: seeds=99999999 is not an integer in [0, 16777216]");
  EXPECT_EQ(job_file_error("gen=path:10 algo=luby seeds=1:99999999\n"),
            "line 1: seeds=99999999 is not an integer in [0, 16777216]");
  EXPECT_EQ(job_file_error("gen=path:10 algo=luby seeds=-3:4\n"),
            "line 1: seeds=-3 is not an integer in [0, "
            "18446744073709551615]");
}

TEST(JobFileNegativePaths, NonFiniteAndHexFloatValuesAreRejected) {
  // strtod would happily parse every one of these; the strict-decimal
  // contract turns them into the usual line-numbered diagnostics.
  EXPECT_EQ(job_file_error("gen=path:10 algo=luby eps=inf\n"),
            "line 1: eps=inf is not a finite number");
  EXPECT_EQ(job_file_error("# header\ngen=path:10 algo=mcm-2eps eps=nan\n"),
            "line 2: eps=nan is not a finite number");
  EXPECT_EQ(job_file_error("gen=path:10 algo=luby eps=0x1p3\n"),
            "line 1: eps=0x1p3 is not a finite number");
  EXPECT_EQ(job_file_error("\ngen=path:10 algo=mcm-1eps eps=1e999\n"),
            "line 2: eps=1e999 is not a finite number");
  EXPECT_EQ(job_file_error("gen=path:10 algo=luby eps=infinity\n"),
            "line 1: eps=infinity is not a finite number");
}

TEST(JobFileNegativePaths, EmbeddedGenSpecErrorsKeepLineAndSpecContext) {
  // A bad generator spec inside a job line surfaces the SpecError text
  // (family, parameter index, offending token) behind the line number.
  const std::string unknown = job_file_error(
      "gen=path:10 algo=luby\ngen=torus:5:5 algo=luby\n");
  EXPECT_NE(unknown.find("line 2: bad generator spec \"torus:5:5\""),
            std::string::npos)
      << unknown;
  EXPECT_NE(unknown.find("unknown family \"torus\""), std::string::npos);

  const std::string bad_param =
      job_file_error("gen=path:ten algo=luby\n");
  EXPECT_EQ(bad_param,
            "line 1: bad generator spec \"path:ten\": parameter 1 "
            "(\"ten\") is not an integer in [0, 268435456]");

  const std::string bad_arity = job_file_error("gen=gnp:100 algo=luby\n");
  EXPECT_EQ(bad_arity,
            "line 1: bad generator spec \"gnp:100\": family gnp takes 2 "
            "parameter(s) (gnp:N:P), got 1");
}

TEST(BatchServer, BitIdenticalAcrossThreadCounts) {
  const auto base = serve_mixed(1);
  ASSERT_EQ(base.jobs.size(), 4u);
  for (const auto& job : base.jobs) {
    EXPECT_TRUE(job.all_completed) << job.name;
    for (const auto& row : job.rows) EXPECT_GT(row.solution_size, 0u);
  }
  for (const unsigned threads : {2u, 8u}) {
    expect_same_rows(base, serve_mixed(threads));
  }
}

TEST(BatchServer, PoolSharingDoesNotPerturbJobs) {
  // Each job served alone must produce the same rows as the mixed batch:
  // nothing about pool co-tenancy may leak into results.
  const auto mixed = serve_mixed(4);
  const auto jobs = mixed_jobs();
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    service::BatchServer solo({4});
    solo.submit(jobs[j]);
    const auto alone = solo.serve();
    ASSERT_EQ(alone.jobs.size(), 1u);
    ASSERT_EQ(alone.jobs[0].rows.size(), mixed.jobs[j].rows.size());
    for (std::size_t i = 0; i < alone.jobs[0].rows.size(); ++i) {
      EXPECT_EQ(alone.jobs[0].rows[i], mixed.jobs[j].rows[i])
          << jobs[j].name << " run " << i;
    }
  }
}

TEST(BatchServer, MatchesSequentialRunMany) {
  // For a single-program job the batch rows must equal a plain
  // sim::run_many pass over the same graph, factory and seeds.
  const auto jobs = mixed_jobs();
  const auto& luby_spec = jobs[0];
  ASSERT_EQ(luby_spec.algorithm, "luby");

  service::BatchServer server({8});
  server.submit_all(jobs);
  const auto batch = server.serve();
  const auto& batch_job = batch.jobs[0];

  const service::ResolvedJob reference = service::resolve_job(luby_spec);
  std::vector<std::uint64_t> seeds;
  for (std::uint32_t i = 0; i < luby_spec.num_seeds; ++i) {
    seeds.push_back(luby_spec.seed_at(i));
  }
  sim::RunManyOptions opts;
  opts.policy = luby_spec.policy;
  opts.max_rounds = luby_spec.max_rounds;
  opts.threads = 1;
  const auto runs = sim::run_many(reference.graph,
                                  make_luby_program(reference.graph), seeds,
                                  opts);
  ASSERT_EQ(runs.size(), batch_job.rows.size());
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const auto& row = batch_job.rows[i];
    EXPECT_EQ(row.seed, seeds[i]);
    EXPECT_EQ(row.rounds, runs[i].metrics.rounds) << i;
    EXPECT_EQ(row.messages, runs[i].metrics.messages) << i;
    EXPECT_EQ(row.total_bits, runs[i].metrics.total_bits) << i;
    EXPECT_EQ(row.max_edge_bits, runs[i].metrics.max_edge_bits) << i;
    std::uint64_t is_size = 0;
    for (const std::int64_t out : runs[i].outputs) {
      if (out == kOutInIs) ++is_size;
    }
    EXPECT_EQ(row.solution_size, is_size) << i;
    EXPECT_EQ(row.objective, static_cast<Weight>(is_size)) << i;
  }
}

TEST(BatchServer, ResolveRejectsBadSpecs) {
  service::JobSpec bad;
  bad.gen_spec = "gnp:50:0.1";
  bad.algorithm = "frobnicate";
  EXPECT_THROW(service::resolve_job(bad), service::JobError);

  service::JobSpec missing_file;
  missing_file.graph_file = "/nonexistent/definitely.graph";
  missing_file.algorithm = "luby";
  EXPECT_THROW(service::resolve_job(missing_file), std::exception);
}

TEST(BatchServer, ReportsAreDeterministic) {
  // The emitted CSV/JSON are part of the determinism contract (wall time
  // deliberately lives outside the tables).
  const auto a = serve_mixed(2);
  const auto b = serve_mixed(8);
  std::ostringstream csv_a, csv_b, json_a, json_b, runs_a, runs_b;
  service::summary_table(a).write_csv(csv_a);
  service::summary_table(b).write_csv(csv_b);
  service::summary_table(a).write_json(json_a);
  service::summary_table(b).write_json(json_b);
  service::runs_table(a).write_csv(runs_a);
  service::runs_table(b).write_csv(runs_b);
  EXPECT_EQ(csv_a.str(), csv_b.str());
  EXPECT_EQ(json_a.str(), json_b.str());
  EXPECT_EQ(runs_a.str(), runs_b.str());
  EXPECT_NE(json_a.str().find("\"job\": \"gnp-luby\""), std::string::npos);

  const std::string runs_csv = runs_a.str();
  const auto n_lines =
      static_cast<std::size_t>(std::count(runs_csv.begin(), runs_csv.end(), '\n'));
  EXPECT_EQ(n_lines, 1u + a.total_runs);  // header + one row per run
}

TEST(BatchServer, ServeTwiceIsIdempotent) {
  service::BatchServer server({4});
  server.submit_all(mixed_jobs());
  const auto first = server.serve();
  const auto second = server.serve();
  expect_same_rows(first, second);
}

}  // namespace
}  // namespace distapx
