// Cache lifecycle management (service/cache_manager.hpp).
//
// Contracts under test: the manager's accounting matches the directory;
// gc evicts least-recently-used entries (journal order, deterministic
// tie-break) down to the byte budget with atomic unlinks that tolerate a
// concurrent evictor; open-with-budget enforces at open and on every
// fill; verify detects every corruption mode the rejection tests cover
// and quarantines or deletes it; and a reader racing an evictor never
// crashes or serves a wrong row — evicted entries recompute bit-identical.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <optional>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "service/batch_server.hpp"
#include "service/cache_manager.hpp"
#include "service/job_spec.hpp"
#include "service/result_cache.hpp"
#include "support/changelog.hpp"
#include "support/fingerprint.hpp"
#include "support/manifest.hpp"
#include "test_helpers.hpp"

namespace distapx {
namespace {

namespace fs = std::filesystem;
using test::ScopedTempDir;

service::JobSpec luby_spec(std::uint32_t num_seeds = 4) {
  service::JobSpec spec;
  spec.name = "luby";
  spec.gen_spec = "gnp:60:0.08";
  spec.algorithm = "luby";
  spec.num_seeds = num_seeds;
  return spec;
}

/// Fills `cache` with `count` distinct single-row entries and returns the
/// keys in fill order.
std::vector<Fingerprint> fill_entries(service::ResultCache& cache,
                                      int count, std::uint64_t seed0 = 100) {
  std::vector<Fingerprint> keys;
  for (int i = 0; i < count; ++i) {
    const Fingerprint key =
        service::run_fingerprint(luby_spec(), seed0 + static_cast<std::uint64_t>(i));
    service::RunRow row;
    row.seed = seed0 + static_cast<std::uint64_t>(i);
    row.rounds = 5;
    row.completed = true;
    cache.store(key, row);
    keys.push_back(key);
  }
  return keys;
}

const std::uint64_t kEntry = service::entry_file_size();

// ---- manifest primitive ----------------------------------------------------

TEST(Manifest, AppendReadRoundTripSkipsTornLines) {
  const ScopedTempDir dir("distapx-manifest");
  fs::create_directories(dir.path);
  const std::string path = (dir.path / "m.log").string();

  EXPECT_TRUE(read_manifest(path).empty());  // missing file = empty
  EXPECT_TRUE(append_manifest(path, {{"F", {"abc", "97"}}, {"T", {"abc"}}}));
  EXPECT_TRUE(append_manifest(path, {{"F", {"def", "42"}}}));
  {
    std::ofstream os(path, std::ios::app);
    os << "\n";  // torn/blank line: must be skipped, not fail the load
  }
  EXPECT_TRUE(append_manifest(path, {{"T", {"def"}}}));

  const auto records = read_manifest(path);
  ASSERT_EQ(records.size(), 4u);
  EXPECT_EQ(records[0].tag, "F");
  ASSERT_EQ(records[0].fields.size(), 2u);
  EXPECT_EQ(records[0].fields[0], "abc");
  EXPECT_EQ(records[0].fields[1], "97");
  EXPECT_EQ(records[1].tag, "T");
  EXPECT_EQ(records[3].fields[0], "def");

  EXPECT_TRUE(compact_manifest(path, {{"F", {"ghi", "1"}}}));
  const auto compacted = read_manifest(path);
  ASSERT_EQ(compacted.size(), 1u);
  EXPECT_EQ(compacted[0].fields[0], "ghi");
}

// ---- key recovery from entry paths -----------------------------------------

TEST(CacheManager, KeyFromEntryPathRoundTrips) {
  const ScopedTempDir dir("distapx-mgr-keypath");
  const Fingerprint key = service::run_fingerprint(luby_spec(), 7);
  const std::string path = service::cache_entry_path(dir.str(), key);
  const auto recovered = service::key_from_entry_path(path);
  ASSERT_TRUE(recovered.has_value());
  EXPECT_EQ(*recovered, key);

  EXPECT_FALSE(service::key_from_entry_path("ab/short.rr").has_value());
  EXPECT_FALSE(
      service::key_from_entry_path(path + ".tmp.123.0").has_value());
  EXPECT_FALSE(service::key_from_entry_path(
                   dir.str() + "/xy/zz3aeceb185f56d0308288684966fc.rr")
                   .has_value());
}

// ---- accounting ------------------------------------------------------------

TEST(CacheManager, ScanMatchesDirectoryContents) {
  const ScopedTempDir dir("distapx-mgr-scan");
  service::ResultCache cache(dir.str());
  fill_entries(cache, 10);

  service::CacheManager manager(dir.str());
  EXPECT_EQ(manager.live_entries(), 10u);
  EXPECT_EQ(manager.live_bytes(), 10 * kEntry);
  const auto s = manager.stats();
  EXPECT_EQ(s.entries, 10u);
  EXPECT_EQ(s.bytes, 10 * kEntry);
  EXPECT_EQ(s.quarantined, 0u);
}

TEST(CacheManager, RecordPutAndGetDriveLruOrder) {
  const ScopedTempDir dir("distapx-mgr-lru");
  service::ResultCache cache(dir.str(), /*budget_bytes=*/100 * kEntry);
  const auto keys = fill_entries(cache, 4);
  // Touch key 0 so it becomes most recent; key 1 is now the LRU victim.
  ASSERT_TRUE(cache.lookup(keys[0]).has_value());

  const auto lru = cache.manager()->entries_lru();
  ASSERT_EQ(lru.size(), 4u);
  EXPECT_EQ(lru.front().key, keys[1]);  // oldest untouched fill
  EXPECT_EQ(lru.back().key, keys[0]);   // just touched
  for (const auto& e : lru) EXPECT_EQ(e.size, kEntry);
}

TEST(CacheManager, JournalPersistsLruOrderAcrossReopen) {
  const ScopedTempDir dir("distapx-mgr-journal");
  std::vector<Fingerprint> keys;
  {
    service::ResultCache cache(dir.str(), /*budget_bytes=*/100 * kEntry);
    keys = fill_entries(cache, 4);
    ASSERT_TRUE(cache.lookup(keys[0]).has_value());  // MRU = keys[0]
  }
  // A fresh manager replays the journal: same order as before.
  service::CacheManager manager(dir.str());
  const auto lru = manager.entries_lru();
  ASSERT_EQ(lru.size(), 4u);
  EXPECT_EQ(lru.front().key, keys[1]);
  EXPECT_EQ(lru.back().key, keys[0]);

  // gc to two entries must keep exactly the two most recent: 3 and 0.
  const auto report = manager.gc(2 * kEntry);
  EXPECT_EQ(report.evicted_entries, 2u);
  EXPECT_EQ(report.live_entries, 2u);
  service::ResultCache reopened(dir.str());
  EXPECT_FALSE(reopened.lookup(keys[1]).has_value());
  EXPECT_FALSE(reopened.lookup(keys[2]).has_value());
  EXPECT_TRUE(reopened.lookup(keys[3]).has_value());
  EXPECT_TRUE(reopened.lookup(keys[0]).has_value());
}

// ---- gc --------------------------------------------------------------------

TEST(CacheManager, GcEvictsToBudgetAndCompactsManifest) {
  const ScopedTempDir dir("distapx-mgr-gc");
  service::ResultCache cache(dir.str());
  fill_entries(cache, 20);

  service::CacheManager manager(dir.str());
  const auto report = manager.gc(7 * kEntry + 3);
  EXPECT_EQ(report.live_entries, 7u);
  EXPECT_LE(report.live_bytes, 7 * kEntry + 3);
  EXPECT_EQ(report.evicted_entries, 13u);
  EXPECT_EQ(report.evicted_bytes, 13 * kEntry);

  // Disk agrees with the report.
  std::uint64_t on_disk = 0;
  for (const auto& e : fs::recursive_directory_iterator(dir.path)) {
    if (e.is_regular_file() && e.path().extension() == ".rr") ++on_disk;
  }
  EXPECT_EQ(on_disk, 7u);

  // The compacted manifest alone reconstructs the accounting.
  service::CacheManager fresh(dir.str());
  EXPECT_EQ(fresh.live_entries(), 7u);
  EXPECT_EQ(fresh.live_bytes(), report.live_bytes);

  // gc with room to spare is a no-op.
  const auto idle = fresh.gc(100 * kEntry);
  EXPECT_EQ(idle.evicted_entries, 0u);
  EXPECT_EQ(idle.live_entries, 7u);

  // gc to zero empties the cache.
  const auto zero = fresh.gc(0);
  EXPECT_EQ(zero.live_entries, 0u);
  EXPECT_EQ(zero.live_bytes, 0u);
}

TEST(CacheManager, GcToleratesEntriesDeletedByAConcurrentProcess) {
  const ScopedTempDir dir("distapx-mgr-gc-race");
  service::ResultCache cache(dir.str());
  const auto keys = fill_entries(cache, 6);

  service::CacheManager manager(dir.str());
  // Simulate a concurrent evictor: delete three entries behind the
  // manager's back.
  for (int i = 0; i < 3; ++i) {
    fs::remove(service::cache_entry_path(dir.str(), keys[static_cast<std::size_t>(i)]));
  }
  const auto report = manager.gc(0);  // must not throw on missing files
  EXPECT_EQ(report.evicted_entries, 6u);
  EXPECT_EQ(report.live_entries, 0u);
  EXPECT_EQ(manager.live_bytes(), 0u);
}

TEST(CacheManager, RescanConvergesWithExternalWriters) {
  const ScopedTempDir dir("distapx-mgr-rescan");
  service::CacheManager manager(dir.str());
  EXPECT_EQ(manager.live_entries(), 0u);

  service::ResultCache writer(dir.str());  // a "foreign process"
  fill_entries(writer, 5);
  manager.rescan();
  EXPECT_EQ(manager.live_entries(), 5u);
  EXPECT_EQ(manager.live_bytes(), 5 * kEntry);
}

// ---- open-with-budget ------------------------------------------------------

TEST(ResultCacheBudget, OpenEnforcesBudgetImmediately) {
  const ScopedTempDir dir("distapx-budget-open");
  std::vector<Fingerprint> keys;
  {
    service::ResultCache unbudgeted(dir.str());
    keys = fill_entries(unbudgeted, 20);
  }
  service::ResultCache cache(dir.str(), 5 * kEntry);
  ASSERT_NE(cache.manager(), nullptr);
  EXPECT_EQ(cache.budget_bytes(), 5 * kEntry);
  EXPECT_LE(cache.manager()->live_bytes(), 5 * kEntry);
  EXPECT_EQ(cache.manager()->live_entries(), 5u);

  // Hits on survivors, misses on evictees — never a wrong row.
  int hits = 0;
  for (const auto& key : keys) hits += cache.lookup(key).has_value() ? 1 : 0;
  EXPECT_EQ(hits, 5);
  EXPECT_EQ(cache.stats().rejected, 0u);
}

TEST(ResultCacheBudget, FillsBeyondBudgetEvictAutomatically) {
  const ScopedTempDir dir("distapx-budget-fill");
  service::ResultCache cache(dir.str(), 8 * kEntry);
  fill_entries(cache, 50);
  EXPECT_LE(cache.manager()->live_bytes(), 8 * kEntry);

  std::uint64_t on_disk_bytes = 0;
  for (const auto& e : fs::recursive_directory_iterator(dir.path)) {
    if (e.is_regular_file() && e.path().extension() == ".rr") {
      on_disk_bytes += e.file_size();
    }
  }
  EXPECT_LE(on_disk_bytes, 8 * kEntry);
  EXPECT_GT(on_disk_bytes, 0u);
}

TEST(ResultCacheBudget, BudgetedServingStaysBitIdentical) {
  const ScopedTempDir dir("distapx-budget-serve");
  std::istringstream is(
      "gen=gnp:60:0.08   algo=luby       seeds=1:6 name=gnp-luby\n"
      "gen=grid:6:6      algo=mcm-2eps   seeds=1:3 eps=0.3 name=grid-mcm\n"
      "gen=tree:50       algo=mwm-lr     seeds=2:3 maxw=32 name=tree-mwm\n");
  const auto jobs = service::parse_job_file(is);

  service::BatchServer plain({2, nullptr});
  plain.submit_all(jobs);
  const auto reference = plain.serve();

  // A budget of ~half the working set: every serve mixes hits, misses,
  // fills, and evictions — rows must still match the uncached reference.
  service::ResultCache cache(dir.str(), 6 * kEntry);
  for (const unsigned threads : {1u, 4u}) {
    service::BatchServer server({threads, &cache});
    server.submit_all(jobs);
    const auto got = server.serve();
    ASSERT_EQ(got.jobs.size(), reference.jobs.size());
    for (std::size_t j = 0; j < got.jobs.size(); ++j) {
      EXPECT_EQ(got.jobs[j].rows, reference.jobs[j].rows)
          << got.jobs[j].name << " at " << threads << " threads";
    }
    EXPECT_LE(cache.manager()->live_bytes(), 6 * kEntry);
  }
}

// ---- verify ----------------------------------------------------------------

class ManagerVerify : public ::testing::Test {
 protected:
  void SetUp() override {
    cache_.emplace(dir_.str());
    keys_ = fill_entries(*cache_, 8);
  }

  std::string path_of(int i) {
    return cache_->entry_path(keys_[static_cast<std::size_t>(i)]);
  }

  std::vector<char> read_file(const std::string& path) {
    std::ifstream is(path, std::ios::binary);
    return {std::istreambuf_iterator<char>(is),
            std::istreambuf_iterator<char>()};
  }

  void write_file(const std::string& path, const std::vector<char>& bytes) {
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  /// Plants one instance of every corruption mode the rejection tests
  /// cover: checksum flip, truncation, empty file, stale engine version,
  /// foreign magic, and an entry copied under the wrong key.
  void corrupt_entries() {
    auto flipped = read_file(path_of(0));
    flipped[flipped.size() / 2] ^= 0x40;
    write_file(path_of(0), flipped);

    auto truncated = read_file(path_of(1));
    truncated.resize(truncated.size() - 9);
    write_file(path_of(1), truncated);

    write_file(path_of(2), {});

    auto stale = read_file(path_of(3));
    stale[8] = static_cast<char>(stale[8] + 1);
    const Fingerprint sum =
        fingerprint_bytes(stale.data(), stale.size() - 16);
    for (int i = 0; i < 8; ++i) {
      stale[stale.size() - 16 + static_cast<std::size_t>(i)] =
          static_cast<char>((sum.hi >> (8 * i)) & 0xff);
      stale[stale.size() - 8 + static_cast<std::size_t>(i)] =
          static_cast<char>((sum.lo >> (8 * i)) & 0xff);
    }
    write_file(path_of(3), stale);

    auto foreign = read_file(path_of(4));
    foreign[0] = 'X';
    write_file(path_of(4), foreign);

    // A valid entry copied to another key's path (checksum fine, key echo
    // wrong): overwrite entry 5 with entry 6's bytes.
    write_file(path_of(5), read_file(path_of(6)));
  }

  ScopedTempDir dir_{"distapx-mgr-verify"};
  std::optional<service::ResultCache> cache_;
  std::vector<Fingerprint> keys_;
};

TEST_F(ManagerVerify, ReportOnlyDetectsEveryRejectionMode) {
  corrupt_entries();
  service::CacheManager manager(dir_.str());
  const auto report = manager.verify(service::RepairMode::kReport);
  EXPECT_EQ(report.checked, 8u);
  EXPECT_EQ(report.ok, 2u);  // entries 6 and 7 untouched
  EXPECT_EQ(report.invalid, 6u);
  EXPECT_EQ(report.quarantined, 0u);
  EXPECT_EQ(report.deleted, 0u);
  ASSERT_EQ(report.findings.size(), 6u);

  // Every distinct failure mode shows up with its name.
  std::set<service::EntryStatus> seen;
  for (const auto& f : report.findings) seen.insert(f.status);
  EXPECT_TRUE(seen.count(service::EntryStatus::kBadChecksum));
  EXPECT_TRUE(seen.count(service::EntryStatus::kBadLength));
  EXPECT_TRUE(seen.count(service::EntryStatus::kBadEngine));
  EXPECT_TRUE(seen.count(service::EntryStatus::kBadMagic));
  EXPECT_TRUE(seen.count(service::EntryStatus::kKeyMismatch));

  // Report-only touched nothing.
  EXPECT_TRUE(fs::exists(path_of(0)));
  EXPECT_EQ(manager.verify(service::RepairMode::kReport).invalid, 6u);
}

TEST_F(ManagerVerify, QuarantineMovesInvalidEntriesAndHealsTheCache) {
  corrupt_entries();
  service::CacheManager manager(dir_.str());
  const auto report = manager.verify(service::RepairMode::kQuarantine);
  EXPECT_EQ(report.invalid, 6u);
  EXPECT_EQ(report.quarantined, 6u);
  EXPECT_EQ(report.deleted, 0u);

  // Quarantined files moved out of the entry tree, nothing deleted.
  EXPECT_FALSE(fs::exists(path_of(0)));
  EXPECT_EQ(manager.stats().quarantined, 6u);
  EXPECT_EQ(manager.live_entries(), 2u);

  // A second verify is clean, and the healthy entries still serve.
  const auto again = manager.verify(service::RepairMode::kReport);
  EXPECT_EQ(again.invalid, 0u);
  EXPECT_EQ(again.ok, 2u);
  service::ResultCache reopened(dir_.str());
  EXPECT_TRUE(reopened.lookup(keys_[6]).has_value());
  EXPECT_TRUE(reopened.lookup(keys_[7]).has_value());
  EXPECT_EQ(reopened.stats().rejected, 0u);
}

TEST_F(ManagerVerify, DeleteUnlinksInvalidEntries) {
  corrupt_entries();
  service::CacheManager manager(dir_.str());
  const auto report = manager.verify(service::RepairMode::kDelete);
  EXPECT_EQ(report.deleted, 6u);
  EXPECT_EQ(report.quarantined, 0u);
  EXPECT_EQ(manager.live_entries(), 2u);
  EXPECT_EQ(manager.stats().quarantined, 0u);
  EXPECT_FALSE(fs::exists(path_of(0)));
}

TEST_F(ManagerVerify, StrayTempFilesAreForeignAndUntouched) {
  const std::string stray =
      path_of(0) + ".tmp.123.0";  // a crashed store()'s dropping
  write_file(stray, {'j', 'u', 'n', 'k'});
  service::CacheManager manager(dir_.str());
  const auto report = manager.verify(service::RepairMode::kDelete);
  EXPECT_EQ(report.foreign, 1u);
  EXPECT_EQ(report.invalid, 0u);
  EXPECT_TRUE(fs::exists(stray));  // verify never touches foreign files
}

TEST(CacheManager, ClearRemovesEntriesManifestAndQuarantine) {
  const ScopedTempDir dir("distapx-mgr-clear");
  service::ResultCache cache(dir.str(), 100 * kEntry);
  const auto keys = fill_entries(cache, 5);
  // Corrupt one + quarantine it so clear() has all three kinds of state.
  {
    std::ofstream os(cache.entry_path(keys[0]),
                     std::ios::binary | std::ios::trunc);
    os << "garbage";
  }
  service::CacheManager manager(dir.str());
  ASSERT_EQ(manager.verify(service::RepairMode::kQuarantine).quarantined, 1u);

  EXPECT_EQ(manager.clear(), 4u);
  EXPECT_EQ(manager.live_entries(), 0u);
  const auto s = manager.stats();
  EXPECT_EQ(s.entries, 0u);
  EXPECT_EQ(s.bytes, 0u);
  EXPECT_EQ(s.manifest_bytes, 0u);
  EXPECT_EQ(s.quarantined, 0u);
  // The directory itself survives (it may be a mount point).
  EXPECT_TRUE(fs::is_directory(dir.path));
}

// ---- changelog-backed manifest: open path, migration, failure counters -----

TEST(CacheManager, CheckpointedDirectoryOpensByReplayNotScan) {
  const ScopedTempDir dir("distapx-mgr-replay-open");
  {
    service::ResultCache cache(dir.str(), 100 * kEntry);
    fill_entries(cache, 12);
  }  // manager destruction flushes the buffered journal tail

  service::CacheManager manager(dir.str());
  EXPECT_EQ(manager.registry().counter("cache_open_replays_total").value(),
            1u);
  EXPECT_EQ(manager.registry().counter("cache_open_scans_total").value(), 0u);
  EXPECT_EQ(manager.live_entries(), 12u);
  EXPECT_EQ(manager.live_bytes(), 12 * kEntry);

  // checkpoint() compacts: all state in the snapshot, empty tail, and the
  // next open replays exactly that.
  manager.checkpoint();
  ASSERT_NE(manager.journal(), nullptr);
  EXPECT_EQ(manager.journal()->snapshot_records(), 12u);
  EXPECT_EQ(manager.journal()->tail_records(), 0u);

  service::CacheManager again(dir.str());
  EXPECT_EQ(again.registry().counter("cache_open_replays_total").value(), 1u);
  EXPECT_EQ(again.live_entries(), 12u);
}

TEST(CacheManager, FreshDirectoryScansOnceThenNextOpenReplays) {
  // Populated by an unbudgeted writer (no manager, no journal): the first
  // open pays the one-time directory scan and leaves a snapshot behind;
  // every later open replays.
  const ScopedTempDir dir("distapx-mgr-scan-once");
  service::ResultCache cache(dir.str());
  fill_entries(cache, 5);
  {
    service::CacheManager first(dir.str());
    EXPECT_EQ(first.registry().counter("cache_open_scans_total").value(), 1u);
    EXPECT_EQ(first.registry().counter("cache_open_replays_total").value(),
              0u);
    EXPECT_EQ(first.live_entries(), 5u);
  }
  service::CacheManager second(dir.str());
  EXPECT_EQ(second.registry().counter("cache_open_scans_total").value(), 0u);
  EXPECT_EQ(second.registry().counter("cache_open_replays_total").value(), 1u);
  EXPECT_EQ(second.live_entries(), 5u);
  EXPECT_EQ(second.live_bytes(), 5 * kEntry);
}

TEST(CacheManager, LegacyTextManifestIsMigratedPreservingRecency) {
  const ScopedTempDir dir("distapx-mgr-legacy");
  std::vector<Fingerprint> keys;
  {
    service::ResultCache cache(dir.str());  // unbudgeted: writes no journal
    keys = fill_entries(cache, 3);
  }
  // A pre-changelog text manifest: fills in key order, then a touch that
  // made key 0 the most recent.
  std::vector<ManifestRecord> legacy;
  for (const auto& key : keys) {
    legacy.push_back({"F", {key.hex(), std::to_string(kEntry)}});
  }
  legacy.push_back({"T", {keys[0].hex()}});
  ASSERT_TRUE(append_manifest((dir.path / "manifest.log").string(), legacy));

  // Migration is a scan-open (a text file cannot be replayed), but the
  // legacy lines seed the recency order.
  service::CacheManager manager(dir.str());
  EXPECT_EQ(manager.registry().counter("cache_open_scans_total").value(), 1u);
  const auto lru = manager.entries_lru();
  ASSERT_EQ(lru.size(), 3u);
  EXPECT_EQ(lru.front().key, keys[1]);  // oldest untouched fill
  EXPECT_EQ(lru.back().key, keys[0]);   // touched last in the legacy log

  // The manifest is a changelog now: the next open replays, same order.
  service::CacheManager again(dir.str());
  EXPECT_EQ(again.registry().counter("cache_open_replays_total").value(), 1u);
  const auto lru2 = again.entries_lru();
  ASSERT_EQ(lru2.size(), 3u);
  EXPECT_EQ(lru2.front().key, keys[1]);
  EXPECT_EQ(lru2.back().key, keys[0]);
}

TEST(CacheManager, JournalAppendFailuresAreCountedNotThrown) {
  const ScopedTempDir dir("distapx-mgr-append-fail");
  service::ResultCache cache(dir.str(), 100 * kEntry);
  const auto keys = fill_entries(cache, 2);
  service::CacheManager& manager = *cache.manager();

  Changelog::set_write_failure_for_testing(true);
  manager.record_get(keys[0]);
  manager.checkpoint();  // flush + snapshot both fail; neither may throw
  Changelog::set_write_failure_for_testing(false);
  EXPECT_GE(
      manager.registry().counter("manifest_append_failures_total").value(),
      1u);

  // The in-memory accounting is unharmed and later writes recover fully.
  EXPECT_EQ(manager.live_entries(), 2u);
  manager.checkpoint();
  ASSERT_NE(manager.journal(), nullptr);
  EXPECT_EQ(manager.journal()->snapshot_records(), 2u);
}

TEST(CacheManager, PrewarmValidatesJournalKnownEntriesWithoutRepairing) {
  const ScopedTempDir dir("distapx-mgr-prewarm");
  service::ResultCache cache(dir.str(), 100 * kEntry);
  const auto keys = fill_entries(cache, 6);
  service::CacheManager& manager = *cache.manager();

  auto report = manager.prewarm();
  EXPECT_EQ(report.checked, 6u);
  EXPECT_EQ(report.ok, 6u);
  EXPECT_EQ(report.invalid, 0u);
  EXPECT_EQ(report.bytes, 6 * kEntry);

  // A damaged entry is reported, never modified (repair is verify's job).
  {
    std::ofstream os(cache.entry_path(keys[0]),
                     std::ios::binary | std::ios::trunc);
    os << "garbage";
  }
  report = manager.prewarm();
  EXPECT_EQ(report.checked, 6u);
  EXPECT_EQ(report.ok, 5u);
  EXPECT_EQ(report.invalid, 1u);
  EXPECT_TRUE(fs::exists(cache.entry_path(keys[0])));
}

// ---- concurrent eviction (the satellite contract) --------------------------

TEST(CacheManager, ConcurrentEvictionWithFillsAndReadsIsSafe) {
  const ScopedTempDir dir("distapx-mgr-concurrent");
  std::istringstream is(
      "gen=gnp:60:0.08 algo=luby   seeds=1:8 name=gnp-luby\n"
      "gen=grid:6:6    algo=mcm-2eps seeds=1:4 eps=0.3 name=grid-mcm\n");
  const auto jobs = service::parse_job_file(is);

  service::BatchServer plain({2, nullptr});
  plain.submit_all(jobs);
  const auto reference = plain.serve();

  // Two ResultCache instances on one directory: one serves (fills +
  // reads), the other evicts aggressively the whole time. Readers must
  // fall back to recompute on every eviction, rows must stay
  // bit-identical, and nothing may crash or tear.
  service::ResultCache serving(dir.str());
  service::ResultCache evicting(dir.str(), /*budget_bytes=*/3 * kEntry);
  std::atomic<bool> done{false};
  std::thread evictor([&] {
    while (!done.load()) {
      evicting.manager()->rescan();
      evicting.manager()->gc(3 * kEntry);
    }
  });

  for (int rep = 0; rep < 6; ++rep) {
    service::BatchServer server({4, &serving});
    server.submit_all(jobs);
    const auto got = server.serve();
    ASSERT_EQ(got.jobs.size(), reference.jobs.size());
    for (std::size_t j = 0; j < got.jobs.size(); ++j) {
      ASSERT_EQ(got.jobs[j].rows, reference.jobs[j].rows)
          << "rep " << rep << " job " << got.jobs[j].name;
    }
  }
  done.store(true);
  evictor.join();
  // Rejections may legitimately be zero; the hard requirement is that no
  // lookup ever returned a wrong row, which the row comparison enforced.
  EXPECT_GE(serving.stats().hits + serving.stats().misses, 6u * 12u);
}

}  // namespace
}  // namespace distapx
