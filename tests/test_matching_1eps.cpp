// Appendix B.2/B.3 tests: hypergraph NMM, the LOCAL (1+ε) framework, the
// bipartite CONGEST augmenting-path machinery, and Theorem B.12.
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "graph/algos.hpp"
#include "graph/generators.hpp"
#include "matching/bipartite_paths.hpp"
#include "matching/blossom.hpp"
#include "matching/hk_framework.hpp"
#include "matching/hopcroft_karp.hpp"
#include "matching/hypergraph_nmm.hpp"
#include "matching/mcm_congest.hpp"
#include "test_helpers.hpp"

namespace distapx {
namespace {

// ---- hypergraph nearly-maximal matching ------------------------------------

Hypergraph random_hypergraph(NodeId n, HyperedgeId m, std::uint32_t rank,
                             Rng& rng) {
  std::vector<std::vector<NodeId>> edges;
  for (HyperedgeId e = 0; e < m; ++e) {
    const auto size = 2 + rng.next_below(rank - 1);
    const auto verts = rng.sample_without_replacement(
        n, static_cast<std::uint32_t>(size));
    edges.emplace_back(verts.begin(), verts.end());
  }
  return Hypergraph(n, std::move(edges));
}

class HypergraphNmmSeeds : public ::testing::TestWithParam<int> {};

TEST_P(HypergraphNmmSeeds, MatchingAndMaximalityOnActive) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  Rng rng(seed);
  const Hypergraph h = random_hypergraph(60, 120, 4, rng);
  const auto res = run_hypergraph_nmm(h, seed);
  EXPECT_TRUE(h.is_matching(res.matching));
  EXPECT_TRUE(res.drained);
  // Maximality on active nodes: every hyperedge with all nodes active must
  // intersect the matching.
  std::vector<bool> active(h.num_vertices(), true);
  for (NodeId v : res.deactivated) active[v] = false;
  std::vector<bool> covered(h.num_vertices(), false);
  for (HyperedgeId e : res.matching) {
    for (NodeId v : h.vertices(e)) covered[v] = true;
  }
  for (HyperedgeId e = 0; e < h.num_hyperedges(); ++e) {
    bool all_active = true, touches = false;
    for (NodeId v : h.vertices(e)) {
      all_active = all_active && active[v];
      touches = touches || covered[v];
    }
    EXPECT_TRUE(!all_active || touches) << "hyperedge " << e;
  }
  // Deactivation should be rare (Lemma B.10; δ = 0.05).
  EXPECT_LE(res.deactivated.size(), h.num_vertices() / 5u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HypergraphNmmSeeds, ::testing::Range(1, 8));

TEST(HypergraphNmm, Rank2MatchesGraphSemantics) {
  // A rank-2 hypergraph is a graph: NMM should produce a matching that is
  // near-maximal in the usual sense.
  Rng rng(3);
  std::vector<std::vector<NodeId>> edges;
  const Graph g = gen::gnp(40, 0.1, rng);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto [u, v] = g.endpoints(e);
    edges.push_back({u, v});
  }
  Hypergraph h(40, std::move(edges));
  const auto res = run_hypergraph_nmm(h, 3);
  std::vector<EdgeId> matching(res.matching.begin(), res.matching.end());
  EXPECT_TRUE(is_matching(g, matching));
}

TEST(HypergraphNmm, EmptyAndSingleton) {
  Hypergraph empty(5, {});
  const auto res = run_hypergraph_nmm(empty, 1);
  EXPECT_TRUE(res.matching.empty());
  EXPECT_TRUE(res.drained);
  Hypergraph single(3, {{0, 1, 2}});
  const auto res1 = run_hypergraph_nmm(single, 1);
  EXPECT_EQ(res1.matching.size(), 1u);
}

// ---- LOCAL (1+ε) framework --------------------------------------------------

class HkLocalSeeds : public ::testing::TestWithParam<int> {};

TEST_P(HkLocalSeeds, GreedyModeGivesOnePlusEps) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  Rng rng(seed);
  const Graph g = gen::gnp(60, 0.08, rng);
  HkApproxParams params;
  params.epsilon = 1.0 / 3.0;
  params.algo = PathSetAlgo::kGreedyMaximal;
  const auto res = run_hk_matching_local(g, seed, params);
  EXPECT_TRUE(is_matching(g, res.matching));
  const std::size_t opt = blossom_mcm(g).matching.size();
  EXPECT_GE(res.matching.size() * (1.0 + params.epsilon),
            static_cast<double>(opt))
      << "seed " << seed;
  EXPECT_TRUE(res.deactivated.empty());
  // HK fact (1): no augmenting path of length <= 2⌈1/ε⌉+1 remains.
  const auto mate = mates_of(g, res.matching);
  EXPECT_EQ(shortest_augmenting_path_length(g, mate, 7), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HkLocalSeeds, ::testing::Range(1, 7));

class HkNmmSeeds : public ::testing::TestWithParam<int> {};

TEST_P(HkNmmSeeds, NmmModeGivesOnePlusEpsOnActive) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  Rng rng(seed);
  const Graph g = gen::gnp(50, 0.1, rng);
  HkApproxParams params;
  params.epsilon = 1.0 / 3.0;
  params.algo = PathSetAlgo::kHypergraphNmm;
  const auto res = run_hk_matching_local(g, seed, params);
  EXPECT_TRUE(is_matching(g, res.matching));
  const std::size_t opt = blossom_mcm(g).matching.size();
  // Deactivations may cost a little; Theorem B.4 accounting.
  EXPECT_GE((res.matching.size() + res.deactivated.size()) *
                (1.0 + params.epsilon),
            static_cast<double>(opt))
      << "seed " << seed;
  // No augmenting path among non-deactivated nodes.
  std::vector<bool> active(g.num_nodes(), true);
  for (NodeId v : res.deactivated) active[v] = false;
  const auto mate = mates_of(g, res.matching);
  EXPECT_EQ(shortest_augmenting_path_length(g, mate, 7, active), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HkNmmSeeds, ::testing::Range(1, 6));

TEST(HkLocal, PerfectOnEvenPath) {
  const Graph p = gen::path(10);
  HkApproxParams params;
  params.epsilon = 0.2;
  params.algo = PathSetAlgo::kGreedyMaximal;
  const auto res = run_hk_matching_local(p, 1, params);
  EXPECT_EQ(res.matching.size(), 5u);
}

// ---- bipartite traversal (Claims B.5/B.6, Figure 1) -------------------------

/// Brute-force per-node count of length-d augmenting paths (d = shortest).
std::vector<double> brute_counts(const Graph& g,
                                 const std::vector<NodeId>& mate,
                                 std::uint32_t d) {
  std::vector<double> counts(g.num_nodes(), 0.0);
  for (const auto& path : enumerate_augmenting_paths(g, mate, d)) {
    for (NodeId v : path) counts[v] += 1.0;
  }
  return counts;
}

class TraversalSeeds : public ::testing::TestWithParam<int> {};

TEST_P(TraversalSeeds, CountsMatchBruteForce) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  Rng rng(seed);
  const Graph g = gen::bipartite_gnp(10, 10, 0.25, rng);
  const auto parts = try_bipartition(g);
  ASSERT_TRUE(parts.has_value());
  std::vector<NodeId> mate(g.num_nodes(), kInvalidNode);
  std::vector<EdgeId> matched_edge(g.num_nodes(), kInvalidEdge);

  for (std::uint32_t d = 1; d <= 5; d += 2) {
    // Establish the precondition: flip all shorter paths maximally.
    for (std::uint32_t s = 1; s < d; s += 2) {
      for (;;) {
        const auto paths = enumerate_augmenting_paths(g, mate, s);
        if (paths.empty()) break;
        std::vector<bool> used(g.num_nodes(), false);
        bool any = false;
        for (const auto& path : paths) {
          if (std::any_of(path.begin(), path.end(),
                          [&](NodeId v) { return used[v]; })) {
            continue;
          }
          for (NodeId v : path) used[v] = true;
          flip_augmenting_path(g, mate, matched_edge, path);
          any = true;
        }
        if (!any) break;
      }
    }
    if (shortest_augmenting_path_length(g, mate, d) != d) continue;
    const auto traversal =
        count_augmenting_paths_per_node(g, *parts, mate, d);
    const auto brute = brute_counts(g, mate, d);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      EXPECT_NEAR(traversal[v], brute[v], 1e-6)
          << "d=" << d << " node " << v << " seed " << seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraversalSeeds, ::testing::Range(1, 10));

TEST(Traversal, Figure1StyleManualGraph) {
  // A small instance mirroring Figure 1's structure: 4 A-nodes, 4 B-nodes,
  // a partial matching, count the length-3 augmenting paths by hand.
  GraphBuilder b(8);  // A = {0,1,2,3}, B = {4,5,6,7}
  // matching: (1,5), (2,6)
  b.add_edge(0, 5);  // free A 0 -> matched B 5
  b.add_edge(1, 5);
  b.add_edge(1, 4);  // matched A 1 -> free B 4
  b.add_edge(0, 6);
  b.add_edge(2, 6);
  b.add_edge(2, 7);  // matched A 2 -> free B 7
  const Graph g = b.build();
  Bipartition parts;
  parts.side.assign(8, Side::kRight);
  for (NodeId v = 0; v < 4; ++v) parts.side[v] = Side::kLeft;
  std::vector<NodeId> mate(8, kInvalidNode);
  mate[1] = 5;
  mate[5] = 1;
  mate[2] = 6;
  mate[6] = 2;
  // Length-3 augmenting paths from free A (0,3): 0-5-1-4 and 0-6-2-7.
  const auto counts = count_augmenting_paths_per_node(g, parts, mate, 3);
  EXPECT_DOUBLE_EQ(counts[0], 2.0);
  EXPECT_DOUBLE_EQ(counts[1], 1.0);
  EXPECT_DOUBLE_EQ(counts[2], 1.0);
  EXPECT_DOUBLE_EQ(counts[4], 1.0);
  EXPECT_DOUBLE_EQ(counts[7], 1.0);
  EXPECT_DOUBLE_EQ(counts[3], 0.0);
}

class FindFlipSeeds : public ::testing::TestWithParam<int> {};

TEST_P(FindFlipSeeds, FlipsDisjointPathsUntilDrained) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  Rng rng(seed);
  const Graph g = gen::bipartite_gnp(15, 15, 0.2, rng);
  const auto parts = try_bipartition(g);
  ASSERT_TRUE(parts.has_value());
  std::vector<NodeId> mate(g.num_nodes(), kInvalidNode);
  std::vector<bool> active(g.num_nodes(), true);
  Rng search_rng(hash_combine(seed, 1));

  for (std::uint32_t d = 1; d <= 5; d += 2) {
    AugPathSearchParams params;
    params.d = d;
    const auto res = find_and_flip_aug_paths_bipartite(
        g, *parts, mate, active, params, search_rng);
    EXPECT_TRUE(res.drained) << "d=" << d;
    for (const auto& path : res.flipped) {
      EXPECT_EQ(path.size(), d + 1) << "d=" << d;
    }
    // No length-d augmenting path among active nodes remains.
    EXPECT_EQ(shortest_augmenting_path_length(g, mate, d, active), 0u)
        << "d=" << d << " seed " << seed;
  }
  // The matching view must still be consistent.
  std::size_t matched = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (mate[v] != kInvalidNode) {
      EXPECT_EQ(mate[mate[v]], v);
      ++matched;
    }
  }
  EXPECT_EQ(matched % 2, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FindFlipSeeds, ::testing::Range(1, 8));

// ---- Theorem B.12 ------------------------------------------------------------

class McmCongestSeeds : public ::testing::TestWithParam<int> {};

TEST_P(McmCongestSeeds, OnePlusEpsOnGeneralGraphs) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  Rng rng(seed);
  const Graph g = gen::gnp(60, 0.08, rng);
  McmCongestParams params;
  params.epsilon = 1.0 / 3.0;
  const auto res = run_mcm_1eps_congest(g, seed, params);
  EXPECT_TRUE(is_matching(g, res.matching));
  const std::size_t opt = blossom_mcm(g).matching.size();
  EXPECT_GE((res.matching.size() + res.deactivated.size()) *
                (1.0 + params.epsilon),
            static_cast<double>(opt))
      << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, McmCongestSeeds, ::testing::Range(1, 7));

TEST(McmCongest, BipartiteNearOptimal) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    Rng rng(seed);
    const Graph g = gen::bipartite_gnp(25, 25, 0.15, rng);
    McmCongestParams params;
    params.epsilon = 0.25;
    const auto res = run_mcm_1eps_congest(g, seed, params);
    const std::size_t opt = hopcroft_karp(g).matching.size();
    EXPECT_GE((res.matching.size() + res.deactivated.size()) * 1.25,
              static_cast<double>(opt))
        << "seed " << seed;
  }
}

TEST(McmCongest, PathsAndCycles) {
  McmCongestParams params;
  params.epsilon = 0.25;
  const auto p = run_mcm_1eps_congest(gen::path(20), 2, params);
  EXPECT_GE(p.matching.size(), 8u);  // opt 10, (1+ε) with slack
  const auto c = run_mcm_1eps_congest(gen::cycle(20), 2, params);
  EXPECT_GE(c.matching.size(), 8u);
}

TEST(McmCongest, MatchingOnlyGrowsAcrossStages) {
  // Internal consistency: result must be at least a maximal-matching-size
  // fraction; specifically at least half of OPT (any maximal matching is).
  Rng rng(9);
  const Graph g = gen::gnp(70, 0.06, rng);
  const auto res = run_mcm_1eps_congest(g, 9);
  const std::size_t opt = blossom_mcm(g).matching.size();
  EXPECT_GE(res.matching.size() * 2 + res.deactivated.size(), opt);
}


TEST(HypergraphNmm, ForcedDeactivationPathStillValid) {
  // Threshold 0-ish deactivates aggressively; the matching must stay
  // valid and maximality must hold among the surviving active nodes.
  Rng rng(13);
  const Hypergraph h = random_hypergraph(40, 90, 4, rng);
  HypergraphNmmParams params;
  params.good_round_threshold = 1;
  const auto res = run_hypergraph_nmm(h, 13, params);
  EXPECT_TRUE(h.is_matching(res.matching));
  EXPECT_TRUE(res.drained);
  std::vector<bool> active(h.num_vertices(), true);
  for (NodeId v : res.deactivated) active[v] = false;
  std::vector<bool> covered(h.num_vertices(), false);
  for (HyperedgeId e : res.matching) {
    for (NodeId v : h.vertices(e)) covered[v] = true;
  }
  for (HyperedgeId e = 0; e < h.num_hyperedges(); ++e) {
    bool all_active = true, touches = false;
    for (NodeId v : h.vertices(e)) {
      all_active = all_active && active[v];
      touches = touches || covered[v];
    }
    EXPECT_TRUE(!all_active || touches);
  }
}

TEST(FindFlip, ForcedDeactivationKeepsInvariant) {
  Rng rng(14);
  const Graph g = gen::bipartite_gnp(12, 12, 0.3, rng);
  const auto parts = try_bipartition(g);
  ASSERT_TRUE(parts.has_value());
  std::vector<NodeId> mate(g.num_nodes(), kInvalidNode);
  std::vector<bool> active(g.num_nodes(), true);
  Rng search_rng(15);
  AugPathSearchParams params;
  params.d = 1;
  params.good_threshold = 1;  // deactivate after a single good iteration
  const auto res = find_and_flip_aug_paths_bipartite(g, *parts, mate,
                                                     active, params,
                                                     search_rng);
  // Either drained naturally or everything left on a path was pulled out;
  // in both cases no active length-1 augmenting path may remain.
  EXPECT_EQ(shortest_augmenting_path_length(g, mate, 1, active), 0u);
  for (const auto& path : res.flipped) EXPECT_EQ(path.size(), 2u);
}

TEST(FindFlip, IterationCapDeactivatesCarriers) {
  Rng rng(16);
  const Graph g = gen::bipartite_gnp(10, 10, 0.4, rng);
  const auto parts = try_bipartition(g);
  std::vector<NodeId> mate(g.num_nodes(), kInvalidNode);
  std::vector<bool> active(g.num_nodes(), true);
  Rng search_rng(17);
  AugPathSearchParams params;
  params.d = 1;
  params.max_iterations = 1;  // force the cap path
  find_and_flip_aug_paths_bipartite(g, *parts, mate, active, params,
                                    search_rng);
  EXPECT_EQ(shortest_augmenting_path_length(g, mate, 1, active), 0u);
}

}  // namespace
}  // namespace distapx
