// Section 3.1 / Appendix B.1 / B.4 tests: the O(log Δ / log log Δ) matching
// approximations.
#include <gtest/gtest.h>

#include "graph/algos.hpp"
#include "graph/generators.hpp"
#include "matching/blossom.hpp"
#include "matching/exact_mwm.hpp"
#include "matching/hopcroft_karp.hpp"
#include "matching/nmm_2eps.hpp"
#include "matching/proposal.hpp"
#include "matching/weighted_2eps.hpp"
#include "test_helpers.hpp"

namespace distapx {
namespace {

EdgeWeights edge_weights_for(const Graph& g, std::uint64_t seed,
                             Weight max_w) {
  Rng rng(hash_combine(seed, 0x33));
  return gen::uniform_edge_weights(g.num_edges(), max_w, rng);
}

class Nmm2EpsSeeds : public ::testing::TestWithParam<int> {};

TEST_P(Nmm2EpsSeeds, ApproximatesMcm) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  Rng rng(seed);
  const Graph g = gen::gnp(100, 0.06, rng);
  Nmm2EpsParams params;
  params.epsilon = 0.25;
  const auto res = run_nmm_2eps_matching(g, seed, params);
  EXPECT_TRUE(is_matching(g, res.matching));
  const std::size_t opt = blossom_mcm(g).matching.size();
  // (2+ε) guarantee with the paper's expectation argument; fixed seeds.
  EXPECT_GE(res.matching.size() * (2.0 + params.epsilon),
            static_cast<double>(opt))
      << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, Nmm2EpsSeeds, ::testing::Range(1, 7));

TEST(Nmm2Eps, UndecidedEdgesAreUncoveredOnly) {
  Rng rng(3);
  const Graph g = gen::gnp(80, 0.08, rng);
  const auto res = run_nmm_2eps_matching(g, 3);
  std::vector<bool> used(g.num_nodes(), false);
  for (EdgeId e : res.matching) {
    const auto [u, v] = g.endpoints(e);
    used[u] = used[v] = true;
  }
  // Any uncovered edge must be among the undecided leftovers.
  std::vector<bool> undecided(g.num_edges(), false);
  for (EdgeId e : res.undecided_edges) undecided[e] = true;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto [u, v] = g.endpoints(e);
    if (!used[u] && !used[v]) {
      EXPECT_TRUE(undecided[e]);
    }
  }
  EXPECT_LE(res.undecided_edges.size(),
            std::max<std::size_t>(4, g.num_edges() / 8));
}

TEST(Nmm2Eps, RoundsGrowSublinearlyInDegree) {
  // The Theorem 3.2 shape: super-rounds should grow far slower than Δ.
  std::uint32_t r4 = 0, r32 = 0;
  {
    Rng rng(5);
    const Graph g = gen::random_regular(256, 4, rng);
    r4 = run_nmm_2eps_matching(g, 5).super_rounds;
  }
  {
    Rng rng(6);
    const Graph g = gen::random_regular(256, 32, rng);
    r32 = run_nmm_2eps_matching(g, 6).super_rounds;
  }
  EXPECT_LT(r32, r4 * 4);  // 8x the degree, far less than 8x the rounds
}

TEST(Nmm2Eps, CongestCapRespected) {
  const Graph g = gen::star(150);
  const auto res = run_nmm_2eps_matching(g, 7);
  EXPECT_LE(res.metrics.max_edge_bits, res.metrics.bandwidth_cap);
}

class WeightedBucketSeeds : public ::testing::TestWithParam<int> {};

TEST_P(WeightedBucketSeeds, Stage1IsConstantApprox) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  Rng rng(seed);
  const Graph g = gen::bipartite_gnp(30, 30, 0.12, rng);
  const auto w = edge_weights_for(g, seed, 1000);
  const auto res = run_bucketed_o1_mwm(g, w, seed);
  EXPECT_TRUE(is_matching(g, res.matching));
  const Weight opt = matching_weight(w, exact_mwm_bipartite(g, w).matching);
  const Weight got = matching_weight(w, res.matching);
  EXPECT_GE(got * 10, opt) << "seed " << seed;  // O(1), generous constant
}

INSTANTIATE_TEST_SUITE_P(Seeds, WeightedBucketSeeds, ::testing::Range(1, 6));

class Weighted2EpsSeeds : public ::testing::TestWithParam<int> {};

TEST_P(Weighted2EpsSeeds, TwoPlusEpsApproximation) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  Rng rng(seed);
  const Graph g = gen::bipartite_gnp(25, 25, 0.15, rng);
  const auto w = edge_weights_for(g, seed, 500);
  Weighted2EpsParams params;
  params.epsilon = 0.25;
  const auto res = run_weighted_2eps_matching(g, w, seed, params);
  EXPECT_TRUE(is_matching(g, res.matching));
  const Weight opt = matching_weight(w, exact_mwm_bipartite(g, w).matching);
  const double got = static_cast<double>(matching_weight(w, res.matching));
  EXPECT_GE(got * (2.0 + params.epsilon), static_cast<double>(opt))
      << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, Weighted2EpsSeeds, ::testing::Range(1, 6));

TEST(Weighted2Eps, RefinementImprovesStage1) {
  Rng rng(11);
  const Graph g = gen::bipartite_gnp(30, 30, 0.15, rng);
  const auto w = edge_weights_for(g, 11, 300);
  const auto stage1 = run_bucketed_o1_mwm(g, w, 11);
  const auto full = run_weighted_2eps_matching(g, w, 11);
  EXPECT_GE(matching_weight(w, full.matching),
            matching_weight(w, stage1.matching));
}

TEST(Weighted2Eps, GeneralGraphsSmall) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    Rng rng(seed);
    const Graph g = gen::gnp(14, 0.3, rng);
    if (g.num_edges() == 0) continue;
    const auto w = edge_weights_for(g, seed, 100);
    const auto res = run_weighted_2eps_matching(g, w, seed);
    EXPECT_TRUE(is_matching(g, res.matching));
    const Weight opt = matching_weight(w, exact_mwm_small(g, w).matching);
    EXPECT_GE(matching_weight(w, res.matching) * 3, opt)
        << "seed " << seed;
  }
}

// ---- Appendix B.4: the proposal algorithm ----------------------------------

TEST(ProposalBudget, OptimizedKBeatsFixedSmallK) {
  ProposalParams small_k;
  small_k.K = 2;
  small_k.epsilon = 0.25;
  ProposalParams opt_k;
  opt_k.epsilon = 0.25;
  const auto t2 = proposal_iteration_budget(1u << 16, small_k);
  const auto topt = proposal_iteration_budget(1u << 16, opt_k);
  EXPECT_LE(topt, t2 + 1);
}

class ProposalSeeds : public ::testing::TestWithParam<int> {};

TEST_P(ProposalSeeds, BipartiteMatchingQuality) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  Rng rng(seed);
  const Graph g = gen::bipartite_gnp(60, 60, 0.08, rng);
  const auto parts = try_bipartition(g);
  ASSERT_TRUE(parts.has_value());
  ProposalParams params;
  params.epsilon = 0.2;
  const auto res =
      run_proposal_matching_bipartite(g, *parts, seed, params);
  EXPECT_TRUE(is_matching(g, res.matching));
  // Lemma B.13: few unlucky left nodes.
  std::size_t left_in_opt = 0;
  const auto opt = hopcroft_karp(g, *parts);
  left_in_opt = opt.matching.size();
  EXPECT_LE(res.unlucky.size(),
            std::max<std::size_t>(3, left_in_opt / 3))
      << "seed " << seed;
  EXPECT_GE(res.matching.size() * (2.0 + params.epsilon) + 3.0,
            static_cast<double>(opt.matching.size()))
      << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProposalSeeds, ::testing::Range(1, 7));

TEST(Proposal, GeneralGraphWrapper) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed);
    const Graph g = gen::gnp(90, 0.07, rng);
    ProposalParams params;
    params.epsilon = 0.2;
    const auto res = run_proposal_matching(g, seed, params);
    EXPECT_TRUE(is_matching(g, res.matching));
    const std::size_t opt = blossom_mcm(g).matching.size();
    EXPECT_GE(res.matching.size() * (2.0 + params.epsilon) + 2.0,
              static_cast<double>(opt))
        << "seed " << seed;
  }
}

TEST(Proposal, PerfectOnDisjointEdges) {
  // A perfect matching exists and every proposal must land: n/2 edges.
  GraphBuilder b(10);
  for (NodeId v = 0; v < 10; v += 2) b.add_edge(v, v + 1);
  const Graph g = b.build();
  const auto parts = try_bipartition(g);
  const auto res = run_proposal_matching_bipartite(g, *parts, 3);
  EXPECT_EQ(res.matching.size(), 5u);
  EXPECT_TRUE(res.unlucky.empty());
}

TEST(Proposal, RespectsCongestCap) {
  Rng rng(4);
  const Graph g = gen::bipartite_gnp(50, 50, 0.1, rng);
  const auto parts = try_bipartition(g);
  const auto res = run_proposal_matching_bipartite(g, *parts, 4);
  EXPECT_LE(res.metrics.max_edge_bits, res.metrics.bandwidth_cap);
}

}  // namespace
}  // namespace distapx
