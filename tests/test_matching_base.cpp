#include <gtest/gtest.h>

#include "graph/algos.hpp"
#include "graph/generators.hpp"
#include "matching/augmenting.hpp"
#include "matching/baselines.hpp"
#include "matching/blossom.hpp"
#include "matching/exact_mwm.hpp"
#include "matching/hopcroft_karp.hpp"
#include "test_helpers.hpp"

namespace distapx {
namespace {

EdgeWeights edge_weights_for(const Graph& g, std::uint64_t seed,
                             Weight max_w) {
  Rng rng(hash_combine(seed, 0xe));
  return gen::uniform_edge_weights(g.num_edges(), max_w, rng);
}

TEST(MatesOf, RoundTrips) {
  const Graph p = gen::path(5);
  const auto mate = mates_of(p, {0, 2});
  EXPECT_EQ(mate[0], 1u);
  EXPECT_EQ(mate[1], 0u);
  EXPECT_EQ(mate[2], 3u);
  EXPECT_EQ(mate[4], kInvalidNode);
  EXPECT_THROW(mates_of(p, {0, 1}), EnsureError);
}

TEST(HopcroftKarp, KnownSizes) {
  EXPECT_EQ(hopcroft_karp(gen::path(6)).matching.size(), 3u);
  EXPECT_EQ(hopcroft_karp(gen::path(7)).matching.size(), 3u);
  EXPECT_EQ(hopcroft_karp(gen::cycle(8)).matching.size(), 4u);
  EXPECT_EQ(hopcroft_karp(gen::star(10)).matching.size(), 1u);
  EXPECT_EQ(hopcroft_karp(gen::complete_bipartite(4, 7)).matching.size(),
            4u);
  EXPECT_EQ(hopcroft_karp(gen::grid(4, 4)).matching.size(), 8u);
}

TEST(HopcroftKarp, MatchesBruteForceOnRandomBipartite) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed);
    const Graph g = gen::bipartite_gnp(7, 7, 0.3, rng);
    if (g.num_edges() > 40) continue;
    const auto hk = hopcroft_karp(g);
    EXPECT_TRUE(is_matching(g, hk.matching));
    EXPECT_EQ(hk.matching.size(), test::brute_force_mcm_size(g))
        << "seed " << seed;
  }
}

TEST(HopcroftKarp, RejectsOddCycle) {
  EXPECT_THROW(hopcroft_karp(gen::cycle(5)), EnsureError);
}

TEST(Konig, BipartiteMisSize) {
  // |MaxIS| = n - |MCM| in bipartite graphs.
  EXPECT_EQ(exact_mis_size_bipartite(gen::path(6)), 3u);
  EXPECT_EQ(exact_mis_size_bipartite(gen::complete_bipartite(3, 5)), 5u);
  EXPECT_EQ(exact_mis_size_bipartite(gen::cycle(10)), 5u);
}

TEST(Blossom, KnownSizes) {
  EXPECT_EQ(blossom_mcm(gen::cycle(5)).matching.size(), 2u);
  EXPECT_EQ(blossom_mcm(gen::cycle(9)).matching.size(), 4u);
  EXPECT_EQ(blossom_mcm(gen::complete(7)).matching.size(), 3u);
  EXPECT_EQ(blossom_mcm(gen::complete(8)).matching.size(), 4u);
  EXPECT_EQ(blossom_mcm(gen::path(9)).matching.size(), 4u);
}

TEST(Blossom, TriangleChain) {
  // Two triangles joined by a bridge: needs blossom handling.
  GraphBuilder b(6);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(0, 2);
  b.add_edge(2, 3);
  b.add_edge(3, 4);
  b.add_edge(4, 5);
  b.add_edge(3, 5);
  const Graph g = b.build();
  EXPECT_EQ(blossom_mcm(g).matching.size(), 3u);
}

TEST(Blossom, MatchesBruteForceOnRandomGraphs) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed);
    const Graph g = gen::gnp(10, 0.3, rng);
    if (g.num_edges() > 40) continue;
    const auto res = blossom_mcm(g);
    EXPECT_TRUE(is_matching(g, res.matching));
    EXPECT_EQ(res.matching.size(), test::brute_force_mcm_size(g))
        << "seed " << seed;
  }
}

TEST(Blossom, AgreesWithHopcroftKarpOnBipartite) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed);
    const Graph g = gen::bipartite_gnp(20, 20, 0.15, rng);
    EXPECT_EQ(blossom_mcm(g).matching.size(),
              hopcroft_karp(g).matching.size());
  }
}

TEST(ExactMwmSmall, MatchesManualCases) {
  // Path with weights: best is the two outer edges.
  const Graph p = gen::path(4);  // edges (0,1),(1,2),(2,3)
  const auto res = exact_mwm_small(p, {5, 9, 5});
  EXPECT_EQ(matching_weight({5, 9, 5}, res.matching), 10);
  // Unless the middle dominates.
  const auto res2 = exact_mwm_small(p, {3, 9, 3});
  EXPECT_EQ(matching_weight({3, 9, 3}, res2.matching), 9);
}

TEST(ExactMwmSmall, HandlesTriangle) {
  const Graph t = gen::cycle(3);
  EdgeWeights w{4, 7, 6};
  const auto res = exact_mwm_small(t, w);
  EXPECT_EQ(matching_weight(w, res.matching), 7);
}

TEST(ExactMwmBipartite, MatchesSmallDpOnRandomInstances) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed);
    const Graph g = gen::bipartite_gnp(6, 6, 0.4, rng);
    const auto w = edge_weights_for(g, seed, 30);
    const auto dp = exact_mwm_small(g, w);
    const auto bf = exact_mwm_bipartite(g, w);
    EXPECT_TRUE(is_matching(g, bf.matching));
    EXPECT_EQ(matching_weight(w, bf.matching),
              matching_weight(w, dp.matching))
        << "seed " << seed;
  }
}

TEST(ExactMwmBipartite, PrefersWeightOverCardinality) {
  // A path of 3 edges where the middle edge outweighs both outer ones.
  const Graph p = gen::path(4);
  const auto res = exact_mwm_bipartite(p, {3, 100, 3});
  EXPECT_EQ(matching_weight({3, 100, 3}, res.matching), 100);
}

TEST(GreedyMatching, TwoApproximation) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(seed);
    const Graph g = gen::gnp(14, 0.3, rng);
    if (g.num_nodes() > 22) continue;
    const auto w = edge_weights_for(g, seed, 20);
    const auto greedy = greedy_matching(g, w);
    const auto exact = exact_mwm_small(g, w);
    EXPECT_TRUE(is_matching(g, greedy.matching));
    EXPECT_GE(2 * matching_weight(w, greedy.matching),
              matching_weight(w, exact.matching))
        << "seed " << seed;
  }
}

TEST(GreedyMaximalMatching, MaximalOnFamilies) {
  for (const auto& fc : test::small_families(4)) {
    const auto res = greedy_maximal_matching(fc.graph);
    EXPECT_TRUE(is_maximal_matching(fc.graph, res.matching)) << fc.name;
  }
}

// ---- augmenting paths -------------------------------------------------------

TEST(Augmenting, EnumerationOnPath) {
  const Graph p = gen::path(6);
  std::vector<NodeId> mate(6, kInvalidNode);
  // Empty matching: length-1 augmenting paths are exactly the edges.
  auto paths = enumerate_augmenting_paths(p, mate, 1);
  EXPECT_EQ(paths.size(), 5u);
  // Match edge (2,3): the remaining length-1 paths avoid nodes 2 and 3.
  mate[2] = 3;
  mate[3] = 2;
  paths = enumerate_augmenting_paths(p, mate, 1);
  EXPECT_EQ(paths.size(), 2u);  // (0,1) and (4,5)
  // One length-3 path would need to pass through the matched pair:
  // 1-2-3-4 alternates unmatched/matched/unmatched. Valid.
  paths = enumerate_augmenting_paths(p, mate, 3);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0], (NodePath{1, 2, 3, 4}));
}

TEST(Augmenting, FlipAndValidate) {
  const Graph p = gen::path(4);
  std::vector<NodeId> mate(4, kInvalidNode);
  std::vector<EdgeId> matched_edge(4, kInvalidEdge);
  mate[1] = 2;
  mate[2] = 1;
  matched_edge[1] = matched_edge[2] = 1;
  const NodePath path{0, 1, 2, 3};
  EXPECT_TRUE(is_augmenting_path(p, mate, path));
  flip_augmenting_path(p, mate, matched_edge, path);
  EXPECT_EQ(mate[0], 1u);
  EXPECT_EQ(mate[2], 3u);
  EXPECT_FALSE(is_augmenting_path(p, mate, path));
  EXPECT_THROW(flip_augmenting_path(p, mate, matched_edge, path),
               EnsureError);
  const auto matching = matching_from_matched_edge(p, matched_edge);
  EXPECT_TRUE(is_matching(p, matching));
  EXPECT_EQ(matching.size(), 2u);
}

TEST(Augmenting, ShortestLength) {
  const Graph p = gen::path(6);
  std::vector<NodeId> mate(6, kInvalidNode);
  EXPECT_EQ(shortest_augmenting_path_length(p, mate, 9), 1u);
  mate[2] = 3;
  mate[3] = 2;
  EXPECT_EQ(shortest_augmenting_path_length(p, mate, 9), 1u);
  mate[0] = 1;
  mate[1] = 0;
  mate[4] = 5;
  mate[5] = 4;
  // Perfect matching: no augmenting path at all.
  EXPECT_EQ(shortest_augmenting_path_length(p, mate, 9), 0u);
}

TEST(Augmenting, ActiveMaskRestricts) {
  const Graph p = gen::path(4);
  std::vector<NodeId> mate(4, kInvalidNode);
  std::vector<bool> active(4, true);
  active[0] = false;
  const auto paths = enumerate_augmenting_paths(p, mate, 1, active);
  EXPECT_EQ(paths.size(), 2u);  // (1,2),(2,3) — (0,1) blocked
}

TEST(Augmenting, EvenLengthRejected) {
  const Graph p = gen::path(4);
  std::vector<NodeId> mate(4, kInvalidNode);
  EXPECT_THROW(enumerate_augmenting_paths(p, mate, 2), EnsureError);
}

TEST(Augmenting, CountMatchesHopcroftKarpStructure) {
  // Flipping a maximal set of shortest paths raises the shortest length
  // (Hopcroft–Karp fact (2)).
  Rng rng(12);
  const Graph g = gen::bipartite_gnp(12, 12, 0.25, rng);
  std::vector<NodeId> mate(g.num_nodes(), kInvalidNode);
  std::vector<EdgeId> matched_edge(g.num_nodes(), kInvalidEdge);
  std::uint32_t prev = 0;
  for (std::uint32_t ell = 1; ell <= 5; ell += 2) {
    const std::uint32_t shortest =
        shortest_augmenting_path_length(g, mate, ell);
    if (shortest == 0) break;
    EXPECT_GT(shortest, prev);
    // Flip a maximal set of length-`shortest` disjoint paths.
    for (;;) {
      const auto paths =
          enumerate_augmenting_paths(g, mate, shortest);
      if (paths.empty()) break;
      std::vector<bool> used(g.num_nodes(), false);
      bool flipped = false;
      for (const auto& path : paths) {
        if (std::any_of(path.begin(), path.end(),
                        [&](NodeId v) { return used[v]; })) {
          continue;
        }
        for (NodeId v : path) used[v] = true;
        flip_augmenting_path(g, mate, matched_edge, path);
        flipped = true;
      }
      if (!flipped) break;
    }
    EXPECT_EQ(shortest_augmenting_path_length(g, mate, shortest), 0u);
    prev = shortest;
  }
}

}  // namespace
}  // namespace distapx
