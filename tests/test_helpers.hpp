// Shared fixtures and generators for the distapx test suite.
#pragma once

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "support/random.hpp"

namespace distapx::test {

/// A fresh unique directory under gtest's TempDir, removed on
/// destruction. Used by the result-cache and daemon suites.
struct ScopedTempDir {
  std::filesystem::path path;

  explicit ScopedTempDir(const std::string& tag)
      : path(std::filesystem::path(::testing::TempDir()) /
             (tag + "-" + std::to_string(::getpid()) + "-" +
              std::to_string(counter()++))) {
    std::filesystem::remove_all(path);
  }
  ~ScopedTempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  ScopedTempDir(const ScopedTempDir&) = delete;
  ScopedTempDir& operator=(const ScopedTempDir&) = delete;

  [[nodiscard]] std::string str() const { return path.string(); }

 private:
  static int& counter() {
    static int c = 0;
    return c;
  }
};

/// A named small graph family instance for parameterized suites.
struct FamilyCase {
  std::string name;
  Graph graph;
};

/// Small graphs (n <= ~24) where exact baselines are cheap.
inline std::vector<FamilyCase> small_families(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<FamilyCase> cases;
  cases.push_back({"path16", gen::path(16)});
  cases.push_back({"cycle15", gen::cycle(15)});
  cases.push_back({"cycle16", gen::cycle(16)});
  cases.push_back({"star12", gen::star(12)});
  cases.push_back({"complete8", gen::complete(8)});
  cases.push_back({"bipartite_4_5", gen::complete_bipartite(4, 5)});
  cases.push_back({"grid4x4", gen::grid(4, 4)});
  cases.push_back({"hypercube3", gen::hypercube(3)});
  cases.push_back({"gnp16_sparse", gen::gnp(16, 0.15, rng)});
  cases.push_back({"gnp16_dense", gen::gnp(16, 0.5, rng)});
  cases.push_back({"tree20", gen::random_tree(20, rng)});
  cases.push_back({"caterpillar", gen::caterpillar(4, 3)});
  cases.push_back({"regular_12_3", gen::random_regular(12, 3, rng)});
  return cases;
}

/// Medium graphs for distributed runs (no exact baseline needed or
/// structured ones available).
inline std::vector<FamilyCase> medium_families(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<FamilyCase> cases;
  cases.push_back({"path200", gen::path(200)});
  cases.push_back({"cycle201", gen::cycle(201)});
  cases.push_back({"grid12x12", gen::grid(12, 12)});
  cases.push_back({"gnp200", gen::gnp(200, 0.03, rng)});
  cases.push_back({"tree300", gen::random_tree(300, rng)});
  cases.push_back({"regular_128_4", gen::random_regular(128, 4, rng)});
  cases.push_back({"bipartite_60_60", gen::bipartite_gnp(60, 60, 0.05, rng)});
  cases.push_back({"powerlaw150", gen::power_law(150, 2.5, 4.0, rng)});
  return cases;
}

/// Brute-force exact MaxIS weight by subset enumeration; n <= 20.
Weight brute_force_maxis_weight(const Graph& g, const NodeWeights& w);

/// Brute-force exact MCM size by edge-subset search; small graphs only.
std::size_t brute_force_mcm_size(const Graph& g);

}  // namespace distapx::test
